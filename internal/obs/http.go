package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"
)

// Explainer answers /debug/explain queries. The controller implements it
// by resolving the query against the engine's provenance store and its
// own cross-plane origin maps.
type Explainer interface {
	// Explain resolves relation (a Datalog relation or a P4 table name)
	// and key (a record or match rendering; may be empty when unique)
	// into a JSON-marshalable derivation tree. maxDepth/maxNodes <= 0
	// select implementation defaults. An error wrapping ErrNotFound maps
	// to HTTP 404; any other error to 400.
	Explain(relation, key string, maxDepth, maxNodes int) (any, error)
}

// ErrNotFound marks an explain query whose subject does not exist (or is
// no longer recorded).
var ErrNotFound = errors.New("not found")

// Observer bundles the metrics registry and the transaction tracer that
// one process threads through its planes, plus the process-level health
// state the HTTP surface exposes. A nil *Observer is the disabled state:
// Reg() and Tr() return nil, which cascades into no-op instruments
// everywhere downstream, and the setters are no-ops.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer

	// ready is the /readyz state: set by the process once its planes are
	// established (for the controller: OVSDB monitor up and the initial
	// sync pushed).
	ready atomic.Bool
	// expl holds the registered Explainer (nil until a provenance-capable
	// component wires itself in).
	expl atomic.Value
}

// NewObserver creates an enabled observer with a fresh registry and a
// default-capacity tracer.
func NewObserver() *Observer {
	return &Observer{Registry: NewRegistry(), Tracer: NewTracer(0)}
}

// Reg returns the registry (nil when the observer is disabled).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Tr returns the tracer (nil when the observer is disabled).
func (o *Observer) Tr() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// SetReady flips the /readyz state. Nil-safe.
func (o *Observer) SetReady(ready bool) {
	if o == nil {
		return
	}
	o.ready.Store(ready)
}

// Ready reports the current /readyz state (false when disabled).
func (o *Observer) Ready() bool {
	if o == nil {
		return false
	}
	return o.ready.Load()
}

// SetExplainer registers the /debug/explain resolver. Nil-safe; a nil
// explainer is ignored.
func (o *Observer) SetExplainer(e Explainer) {
	if o == nil || e == nil {
		return
	}
	o.expl.Store(&e)
}

func (o *Observer) explainer() Explainer {
	if o == nil {
		return nil
	}
	if p, ok := o.expl.Load().(*Explainer); ok {
		return *p
	}
	return nil
}

// Handler returns the runtime-exposure mux:
//
//	/metrics        Prometheus text exposition of the registry
//	/healthz        liveness (200 once the process serves HTTP)
//	/readyz         readiness (503 until SetReady(true))
//	/debug/traces   transaction timelines as JSON (?txn= one transaction,
//	                404 if unknown; ?limit= caps the dump)
//	/debug/explain  derivation tree of one fact or table entry
//	                (?relation= and ?key=, with ?depth=/?nodes= bounds)
//	/debug/pprof/   the standard Go profiling endpoints
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Reg().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !o.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("/debug/traces", o.handleTraces)
	mux.HandleFunc("/debug/explain", o.handleExplain)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (o *Observer) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if s := q.Get("txn"); s != "" {
		id, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad txn id: "+s, http.StatusBadRequest)
			return
		}
		tr, ok := o.Tr().Get(id)
		if !ok {
			http.Error(w, "unknown txn "+s, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeTraceJSON(w, tr)
		return
	}
	n := 0
	// ?limit= is the documented form; ?n= is kept for compatibility.
	for _, p := range []string{"limit", "n"} {
		if s := q.Get(p); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	o.Tr().WriteJSON(w, n)
}

func (o *Observer) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	relation := q.Get("relation")
	if relation == "" {
		http.Error(w, "missing relation parameter", http.StatusBadRequest)
		return
	}
	atoi := func(p string) int {
		v, _ := strconv.Atoi(q.Get(p))
		return v
	}
	e := o.explainer()
	if e == nil {
		http.Error(w, "no explainer registered (provenance disabled?)", http.StatusServiceUnavailable)
		return
	}
	res, err := e.Explain(relation, q.Get("key"), atoi("depth"), atoi("nodes"))
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrNotFound) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(res)
}

// Serve serves the runtime endpoints on ln until it is closed.
func (o *Observer) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
	return srv.Serve(ln)
}

// ListenAndServe listens on addr and serves the runtime endpoints.
func (o *Observer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return o.Serve(ln)
}
