package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Observer bundles the metrics registry and the transaction tracer that
// one process threads through its planes. A nil *Observer is the
// disabled state: Reg() and Tr() return nil, which cascades into no-op
// instruments everywhere downstream.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer
}

// NewObserver creates an enabled observer with a fresh registry and a
// default-capacity tracer.
func NewObserver() *Observer {
	return &Observer{Registry: NewRegistry(), Tracer: NewTracer(0)}
}

// Reg returns the registry (nil when the observer is disabled).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Tr returns the tracer (nil when the observer is disabled).
func (o *Observer) Tr() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Handler returns the runtime-exposure mux:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/traces  recent transaction timelines as JSON (?n= limits)
//	/debug/pprof/  the standard Go profiling endpoints
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Reg().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		o.Tr().WriteJSON(w, n)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve serves the runtime endpoints on ln until it is closed.
func (o *Observer) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
	return srv.Serve(ln)
}

// ListenAndServe listens on addr and serves the runtime endpoints.
func (o *Observer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return o.Serve(ln)
}
