package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Explainer answers /debug/explain queries. The controller implements it
// by resolving the query against the engine's provenance store and its
// own cross-plane origin maps.
type Explainer interface {
	// Explain resolves relation (a Datalog relation or a P4 table name)
	// and key (a record or match rendering; may be empty when unique)
	// into a JSON-marshalable derivation tree. maxDepth/maxNodes <= 0
	// select implementation defaults. An error wrapping ErrNotFound maps
	// to HTTP 404; any other error to 400.
	Explain(relation, key string, maxDepth, maxNodes int) (any, error)
}

// ErrNotFound marks an explain query whose subject does not exist (or is
// no longer recorded).
var ErrNotFound = errors.New("not found")

// Observer bundles the metrics registry, the transaction tracer, and
// the flight-recorder state (event ring, incident store, metrics
// history, stall watchdog) that one process threads through its planes,
// plus the process-level health state the HTTP surface exposes. A nil
// *Observer is the disabled state: Reg(), Tr(), Rec() etc. return nil,
// which cascades into no-op instruments everywhere downstream, and the
// setters are no-ops.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer
	// Recorder is the flight-recorder event ring (nil = events disabled;
	// all emit sites are nil-safe).
	Recorder *Recorder
	// Incidents pins slow-transaction captures (nil = capture disabled).
	Incidents *IncidentStore
	// History holds the sampled metrics rings (nil = history disabled).
	History *History
	// Watchdog derives stall state from History on each sampler tick.
	Watchdog *Watchdog
	// Profiler aggregates per-rule workload attribution and memory
	// snapshots (nil = profiling surface disabled).
	Profiler *RuleProfiler

	// ready is the /readyz state: set by the process once its planes are
	// established (for the controller: OVSDB monitor up and the initial
	// sync pushed).
	ready atomic.Bool
	// draining flips /readyz to 503 ahead of listener close so load
	// balancers stop routing before in-flight work is cut off.
	draining atomic.Bool
	// stall holds the watchdog's current reason string ("" = healthy).
	stall atomic.Value
	// degraded holds per-connection outage reasons keyed by connection
	// name (e.g. "ovsdb", a device id). While non-empty, /readyz answers
	// 503 "degraded": the process is alive and self-healing, but not
	// currently holding all planes in sync.
	degradedMu sync.Mutex
	degraded   map[string]string
	// budgets holds the per-stage slow-transaction Budgets.
	budgets atomic.Value
	// expl holds the registered Explainer (nil until a provenance-capable
	// component wires itself in).
	expl atomic.Value
	// identity holds the process Identity stamped onto every HTTP
	// response (zero until SetIdentity).
	identity atomic.Value
	// start anchors the process's monotonic clock: it is captured at
	// observer creation and carries Go's monotonic reading, so
	// time.Since(start) is immune to wall-clock steps.
	start time.Time
	// readyDetail holds appended readiness-detail callbacks (see
	// AddReadyDetail).
	readyDetailMu sync.Mutex
	readyDetail   []func() string

	// extra holds late-registered debug handlers (see RegisterDebug);
	// consulted by the Handler wrapper before the fixed mux.
	extraMu sync.RWMutex
	extra   map[string]http.Handler

	mIncidents *Counter
	mStalled   *Gauge
}

// Identity names the process behind an obs endpoint: which plane it
// implements (ovsdb, controller, switchsim, ...), a fleet-unique
// instance ID, and when it started. Aggregators use it to attribute
// scraped traces and metrics to fleet members and to correct for
// wall-clock skew between hosts.
type Identity struct {
	Plane    string    `json:"plane"`
	Instance string    `json:"instance"`
	Start    time.Time `json:"start"`
}

// ObserverConfig sizes the flight-recorder parts of an observer. The
// zero value selects every default.
type ObserverConfig struct {
	// EventCapacity sizes the event ring; 0 selects
	// DefaultEventCapacity, negative disables event recording entirely.
	EventCapacity int
	// IncidentCapacity sizes the incident store (0 = default).
	IncidentCapacity int
	// HistorySamples sizes each history ring (0 = default).
	HistorySamples int
	// ProfileTopK bounds /debug/rules and fleet hot-rule reports to the
	// K most expensive rules by EWMA cost (0 = DefaultProfileTopK).
	ProfileTopK int
	// Watchdog tunes the stall rules (zero = defaults).
	Watchdog WatchdogConfig
}

// NewObserver creates an enabled observer with default-sized registry,
// tracer, event ring, incident store, history and watchdog.
func NewObserver() *Observer {
	return NewObserverWith(ObserverConfig{})
}

// NewObserverWith creates an enabled observer sized by cfg.
func NewObserverWith(cfg ObserverConfig) *Observer {
	o := &Observer{
		Registry:  NewRegistry(),
		Tracer:    NewTracer(0),
		Incidents: NewIncidentStore(cfg.IncidentCapacity),
		History:   NewHistory(cfg.HistorySamples),
		Watchdog:  NewWatchdog(cfg.Watchdog),
		Profiler:  NewRuleProfiler(cfg.ProfileTopK),
		start:     time.Now(),
	}
	if cfg.EventCapacity >= 0 {
		o.Recorder = NewRecorder(cfg.EventCapacity)
		// Scrape-time callback off the ring's own sequence counter: the
		// append hot path pays no separate metrics atomic.
		o.Registry.CounterFunc("obs_events_total",
			"Flight-recorder events appended (including since-evicted ones).",
			o.Recorder.Total)
	}
	o.mIncidents = o.Registry.Counter("obs_incidents_total",
		"Slow-transaction incidents pinned by budget checks.")
	o.mStalled = o.Registry.Gauge("obs_watchdog_stalled",
		"1 while the stall watchdog reports a wedge, else 0.")
	o.Tracer.convergence = o.Registry.Histogram("obs_convergence_seconds",
		"End-to-end commit-to-switch-applied latency per transaction (the full-stack convergence SLO; observed when one tracer sees both stages).", nil)
	return o
}

// Reg returns the registry (nil when the observer is disabled).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Tr returns the tracer (nil when the observer is disabled).
func (o *Observer) Tr() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Rec returns the flight recorder (nil when disabled; a nil *Recorder
// no-ops Append, so emit sites never check).
func (o *Observer) Rec() *Recorder {
	if o == nil {
		return nil
	}
	return o.Recorder
}

// Inc returns the incident store (nil when disabled).
func (o *Observer) Inc() *IncidentStore {
	if o == nil {
		return nil
	}
	return o.Incidents
}

// SetDraining marks the process as shutting down: /readyz answers 503
// "draining" from now on, regardless of the ready flag. Nil-safe.
func (o *Observer) SetDraining() {
	if o == nil {
		return
	}
	o.draining.Store(true)
}

// Draining reports whether shutdown drain has begun.
func (o *Observer) Draining() bool {
	if o == nil {
		return false
	}
	return o.draining.Load()
}

// SetReady flips the /readyz state. Nil-safe.
func (o *Observer) SetReady(ready bool) {
	if o == nil {
		return
	}
	o.ready.Store(ready)
}

// Ready reports the current /readyz state (false when disabled).
func (o *Observer) Ready() bool {
	if o == nil {
		return false
	}
	return o.ready.Load()
}

// SetDegraded records that the connection named key is down or
// resyncing, with a human-readable reason. While any key is degraded,
// /readyz answers 503 "degraded: ..." so orchestrators stop routing new
// work at a process that cannot currently apply it everywhere. Nil-safe.
func (o *Observer) SetDegraded(key, reason string) {
	if o == nil || key == "" {
		return
	}
	o.degradedMu.Lock()
	if o.degraded == nil {
		o.degraded = make(map[string]string)
	}
	o.degraded[key] = reason
	o.degradedMu.Unlock()
}

// ClearDegraded removes key from the degraded set (no-op if absent).
// Nil-safe.
func (o *Observer) ClearDegraded(key string) {
	if o == nil {
		return
	}
	o.degradedMu.Lock()
	delete(o.degraded, key)
	o.degradedMu.Unlock()
}

// DegradedReasons returns the current degraded set rendered as
// "key: reason" strings in key order ("" entries render as the bare
// key). Empty when healthy or when the observer is disabled.
func (o *Observer) DegradedReasons() []string {
	if o == nil {
		return nil
	}
	o.degradedMu.Lock()
	defer o.degradedMu.Unlock()
	if len(o.degraded) == 0 {
		return nil
	}
	out := make([]string, 0, len(o.degraded))
	for k, v := range o.degraded {
		if v == "" {
			out = append(out, k)
		} else {
			out = append(out, k+": "+v)
		}
	}
	sort.Strings(out)
	return out
}

// SetIdentity names this process for fleet attribution: plane is the
// layer it implements ("ovsdb", "controller", "switchsim", ...),
// instance a fleet-unique ID (defaulting to plane when empty). Every
// HTTP response then carries X-Obs-Plane / X-Obs-Instance /
// X-Obs-Start-Unix-Nano headers alongside the always-present
// X-Obs-Now-Unix-Nano / X-Obs-Mono-Ns clock anchors. Nil-safe.
func (o *Observer) SetIdentity(plane, instance string) {
	if o == nil {
		return
	}
	if instance == "" {
		instance = plane
	}
	o.identity.Store(Identity{Plane: plane, Instance: instance, Start: o.start})
}

// Identity returns the identity set by SetIdentity (zero if unset or
// the observer is disabled).
func (o *Observer) Identity() Identity {
	if o == nil {
		return Identity{}
	}
	id, _ := o.identity.Load().(Identity)
	return id
}

// AddReadyDetail registers a callback whose non-empty return is
// appended as an extra line to the healthy /readyz body — status
// detail (e.g. "wal: snapshot 312s old") that should be visible to
// probes without flipping readiness. Nil-safe.
func (o *Observer) AddReadyDetail(f func() string) {
	if o == nil || f == nil {
		return
	}
	o.readyDetailMu.Lock()
	o.readyDetail = append(o.readyDetail, f)
	o.readyDetailMu.Unlock()
}

// readyDetails collects the non-empty detail lines.
func (o *Observer) readyDetails() []string {
	if o == nil {
		return nil
	}
	o.readyDetailMu.Lock()
	fns := o.readyDetail
	o.readyDetailMu.Unlock()
	var out []string
	for _, f := range fns {
		if s := f(); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// setIdentityHeaders stamps the process-identity and clock-anchor
// headers onto one HTTP response. X-Obs-Now-Unix-Nano is the wall
// clock at response time (an NTP-style skew probe for scrapers);
// X-Obs-Mono-Ns is nanoseconds of monotonic uptime, immune to
// wall-clock steps.
func (o *Observer) setIdentityHeaders(h http.Header) {
	if o == nil {
		return
	}
	if id := o.Identity(); id.Plane != "" || id.Instance != "" {
		h.Set("X-Obs-Plane", id.Plane)
		h.Set("X-Obs-Instance", id.Instance)
		h.Set("X-Obs-Start-Unix-Nano", strconv.FormatInt(id.Start.UnixNano(), 10))
	}
	now := time.Now()
	h.Set("X-Obs-Now-Unix-Nano", strconv.FormatInt(now.UnixNano(), 10))
	if !o.start.IsZero() {
		h.Set("X-Obs-Mono-Ns", strconv.FormatInt(int64(now.Sub(o.start)), 10))
	}
}

// RegisterDebug mounts an extra handler on the observer's HTTP surface
// at the given path (e.g. "/debug/subscribers"). Components that come
// up after the HTTP listener — or that live in packages obs must not
// import — use this to publish their own debug views. Registration may
// happen before or after Handler() is called; extra paths shadow the
// fixed mux, and a later registration on the same path wins. Nil-safe:
// a nil Observer, nil handler, or empty path is a no-op.
func (o *Observer) RegisterDebug(path string, h http.Handler) {
	if o == nil || h == nil || path == "" {
		return
	}
	o.extraMu.Lock()
	if o.extra == nil {
		o.extra = make(map[string]http.Handler)
	}
	o.extra[path] = h
	o.extraMu.Unlock()
}

// debugHandler returns the extra handler registered for path, if any.
func (o *Observer) debugHandler(path string) http.Handler {
	o.extraMu.RLock()
	defer o.extraMu.RUnlock()
	return o.extra[path]
}

// SetExplainer registers the /debug/explain resolver. Nil-safe; a nil
// explainer is ignored.
func (o *Observer) SetExplainer(e Explainer) {
	if o == nil || e == nil {
		return
	}
	o.expl.Store(&e)
}

func (o *Observer) explainer() Explainer {
	if o == nil {
		return nil
	}
	if p, ok := o.expl.Load().(*Explainer); ok {
		return *p
	}
	return nil
}

// Handler returns the runtime-exposure mux:
//
//	/metrics        Prometheus text exposition of the registry
//	/healthz        liveness (200 once the process serves HTTP)
//	/readyz         readiness (503 until SetReady(true))
//	/debug/traces   transaction timelines as JSON (?txn= one transaction,
//	                404 if unknown; ?limit= caps the dump)
//	/debug/events   flight-recorder dump (?plane= ?kind= ?txn= ?since=
//	                [seq or RFC3339] ?limit=; ?format=ndjson streams one
//	                event per line)
//	/debug/incidents pinned slow-transaction captures (?txn= filters)
//	/debug/history  sampled metrics rings (?series= one series, ?limit=
//	                caps samples; without ?series= lists the available
//	                series names)
//	/debug/rules    hot-rule workload report: top-K rules by EWMA
//	                evaluation cost plus an "other" rollup (?limit=
//	                narrows K)
//	/debug/memory   per-relation memory accounting snapshot
//	/debug/explain  derivation tree of one fact or table entry
//	                (?relation= and ?key=, with ?depth=/?nodes= bounds)
//	/debug/pprof/   the standard Go profiling endpoints
//
// Extra paths mounted via RegisterDebug are served ahead of the fixed
// set above.
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Reg().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if o.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if !o.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		if reason := o.StallReason(); reason != "" {
			http.Error(w, "stalled: "+reason, http.StatusServiceUnavailable)
			return
		}
		if reasons := o.DegradedReasons(); len(reasons) > 0 {
			http.Error(w, "degraded: "+strings.Join(reasons, "; "), http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
		// Non-fatal status detail rides along on the healthy body.
		for _, line := range o.readyDetails() {
			io.WriteString(w, line+"\n")
		}
	})
	mux.HandleFunc("/debug/traces", o.handleTraces)
	mux.HandleFunc("/debug/events", o.handleEvents)
	mux.HandleFunc("/debug/incidents", o.handleIncidents)
	mux.HandleFunc("/debug/history", o.handleHistory)
	mux.HandleFunc("/debug/rules", o.handleRules)
	mux.HandleFunc("/debug/memory", o.handleMemory)
	mux.HandleFunc("/debug/explain", o.handleExplain)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Every response carries the process-identity and clock-anchor
	// headers so scrapers can attribute and skew-correct what they read.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		o.setIdentityHeaders(w.Header())
		if h := o.debugHandler(r.URL.Path); h != nil {
			h.ServeHTTP(w, r)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// parseLimit reads the result-cap query parameter shared by every
// /debug/* handler: ?limit= is the documented form, ?n= the accepted
// alias. Absent means 0 (no cap). A negative or non-numeric value is a
// client error: parseLimit answers 400 and returns ok=false, and the
// handler must not write anything further.
func parseLimit(w http.ResponseWriter, q url.Values) (n int, ok bool) {
	for _, p := range []string{"limit", "n"} {
		s := q.Get(p)
		if s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, "bad "+p+" (want non-negative integer): "+s, http.StatusBadRequest)
			return 0, false
		}
		return v, true
	}
	return 0, true
}

func (o *Observer) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if s := q.Get("txn"); s != "" {
		id, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad txn id: "+s, http.StatusBadRequest)
			return
		}
		tr, ok := o.Tr().Get(id)
		if !ok {
			http.Error(w, "unknown txn "+s, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeTraceJSON(w, tr)
		return
	}
	n, ok := parseLimit(w, q)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	o.Tr().WriteJSON(w, n)
}

func (o *Observer) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := EventFilter{Plane: q.Get("plane"), Kind: q.Get("kind")}
	if s := q.Get("txn"); s != "" {
		id, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad txn id: "+s, http.StatusBadRequest)
			return
		}
		f.Txn = id
	}
	if s := q.Get("since"); s != "" {
		// ?since= takes either a sequence number (resume cursor) or an
		// RFC3339 timestamp.
		if seq, err := strconv.ParseUint(s, 10, 64); err == nil {
			f.SinceSeq = seq
		} else if t, err := time.Parse(time.RFC3339, s); err == nil {
			f.Since = t
		} else {
			http.Error(w, "bad since (want sequence number or RFC3339 time): "+s, http.StatusBadRequest)
			return
		}
	}
	n, ok := parseLimit(w, q)
	if !ok {
		return
	}
	f.Limit = n
	if q.Get("format") == "ndjson" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		o.Rec().WriteNDJSON(w, f)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	o.Rec().WriteJSON(w, f)
}

func (o *Observer) handleIncidents(w http.ResponseWriter, r *http.Request) {
	var txn uint64
	if s := r.URL.Query().Get("txn"); s != "" {
		id, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad txn id: "+s, http.StatusBadRequest)
			return
		}
		txn = id
	}
	w.Header().Set("Content-Type", "application/json")
	o.Inc().WriteJSON(w, txn)
}

func (o *Observer) handleHistory(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n, ok := parseLimit(w, q)
	if !ok {
		return
	}
	series := q.Get("series")
	w.Header().Set("Content-Type", "application/json")
	if series == "" {
		// Without ?series= the useful answer is "what can I ask for":
		// the available series names, not every ring's full sample dump.
		o.Hist().WriteNamesJSON(w)
		return
	}
	o.Hist().WriteJSON(w, series, n)
}

func (o *Observer) handleRules(w http.ResponseWriter, r *http.Request) {
	n, ok := parseLimit(w, r.URL.Query())
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	o.Prof().WriteJSON(w, n)
}

func (o *Observer) handleMemory(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	o.Prof().WriteMemoryJSON(w)
}

func (o *Observer) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	relation := q.Get("relation")
	if relation == "" {
		http.Error(w, "missing relation parameter", http.StatusBadRequest)
		return
	}
	atoi := func(p string) int {
		v, _ := strconv.Atoi(q.Get(p))
		return v
	}
	e := o.explainer()
	if e == nil {
		http.Error(w, "no explainer registered (provenance disabled?)", http.StatusServiceUnavailable)
		return
	}
	res, err := e.Explain(relation, q.Get("key"), atoi("depth"), atoi("nodes"))
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrNotFound) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(res)
}

// Serve serves the runtime endpoints on ln until it is closed.
func (o *Observer) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
	return srv.Serve(ln)
}

// ListenAndServe listens on addr and serves the runtime endpoints.
func (o *Observer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return o.Serve(ln)
}
