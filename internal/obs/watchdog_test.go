package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// feedHistory drives a history through n ticks, with per-tick values
// supplied by the callbacks (nil = series untracked).
func feedHistory(h *History, n int, commits, applies, queue, lag func(i int) float64) {
	var i int
	if commits != nil {
		h.TrackRate(SeriesCommits, func() float64 { return commits(i) })
	}
	if applies != nil {
		h.TrackRate(SeriesApplies, func() float64 { return applies(i) })
	}
	if queue != nil {
		h.TrackValue(SeriesQueueDepth, func() float64 { return queue(i) })
	}
	if lag != nil {
		// KindAvg with count advancing by 1 per tick: the per-tick average
		// equals the per-tick sum increment.
		var sum float64
		h.TrackAvg(SeriesMonitorLag,
			func() float64 { sum += lag(i); return sum },
			func() float64 { return float64(i) })
	}
	base := time.Unix(8000, 0)
	for i = 0; i <= n; i++ { // one extra tick: the first only baselines
		h.sampleOnce(base.Add(time.Duration(i) * time.Second))
	}
}

func TestWatchdogCommitsWithoutApplies(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Window: 3})

	stalled := NewHistory(8)
	feedHistory(stalled, 3,
		func(i int) float64 { return float64(10 * i) }, // commits flowing
		func(i int) float64 { return 0 },               // nothing applied
		nil, nil)
	if r := w.Evaluate(stalled); !strings.Contains(r, "commits without applies") {
		t.Fatalf("Evaluate = %q, want commits-without-applies", r)
	}

	healthy := NewHistory(8)
	feedHistory(healthy, 3,
		func(i int) float64 { return float64(10 * i) },
		func(i int) float64 { return float64(10 * i) },
		nil, nil)
	if r := w.Evaluate(healthy); r != "" {
		t.Fatalf("healthy Evaluate = %q, want \"\"", r)
	}

	idle := NewHistory(8)
	feedHistory(idle, 3,
		func(i int) float64 { return 0 }, // no commits: idle, not stalled
		func(i int) float64 { return 0 },
		nil, nil)
	if r := w.Evaluate(idle); r != "" {
		t.Fatalf("idle Evaluate = %q, want \"\"", r)
	}

	short := NewHistory(8)
	feedHistory(short, 2, // only 2 of the 3 required samples
		func(i int) float64 { return float64(10 * i) },
		func(i int) float64 { return 0 },
		nil, nil)
	if r := w.Evaluate(short); r != "" {
		t.Fatalf("short-window Evaluate = %q, want \"\" (needs full window)", r)
	}
}

func TestWatchdogQueueFlatHigh(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Window: 3, QueueHighWater: 100})

	wedged := NewHistory(8)
	feedHistory(wedged, 3, nil, nil, func(i int) float64 { return 300 }, nil)
	if r := w.Evaluate(wedged); !strings.Contains(r, "queue depth flat-high") {
		t.Fatalf("Evaluate = %q, want queue-flat-high", r)
	}

	draining := NewHistory(8)
	feedHistory(draining, 3, nil, nil, func(i int) float64 { return 400 - float64(100*i) }, nil)
	if r := w.Evaluate(draining); r != "" {
		t.Fatalf("draining Evaluate = %q, want \"\" (depth falling)", r)
	}

	low := NewHistory(8)
	feedHistory(low, 3, nil, nil, func(i int) float64 { return 50 }, nil)
	if r := w.Evaluate(low); r != "" {
		t.Fatalf("low-depth Evaluate = %q, want \"\"", r)
	}
}

func TestWatchdogMonitorLagGrowing(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Window: 3, LagFloor: 100 * time.Millisecond})

	falling := NewHistory(8)
	feedHistory(falling, 3, nil, nil, nil, func(i int) float64 { return 1.0 / float64(i+1) })
	if r := w.Evaluate(falling); r != "" {
		t.Fatalf("falling-lag Evaluate = %q, want \"\"", r)
	}

	growing := NewHistory(8)
	feedHistory(growing, 3, nil, nil, nil, func(i int) float64 { return 0.2 * float64(i+1) })
	if r := w.Evaluate(growing); !strings.Contains(r, "monitor lag growing") {
		t.Fatalf("Evaluate = %q, want lag-growing", r)
	}

	// Growing but under the floor: jitter, not a stall.
	tiny := NewHistory(8)
	feedHistory(tiny, 3, nil, nil, nil, func(i int) float64 { return 0.0001 * float64(i+1) })
	if r := w.Evaluate(tiny); r != "" {
		t.Fatalf("tiny-lag Evaluate = %q, want \"\"", r)
	}
}

// TestWatchdogFlipsReadyzAndGauge drives the sampler end to end: a
// stalled history must flip /readyz to 503 with the reason and raise
// obs_watchdog_stalled; recovery must clear both.
func TestWatchdogFlipsReadyzAndGauge(t *testing.T) {
	o := NewObserverWith(ObserverConfig{Watchdog: WatchdogConfig{Window: 3}})
	o.SetReady(true)
	commits, applies := 0.0, 0.0
	o.TrackRate(SeriesCommits, func() float64 { return commits })
	o.TrackRate(SeriesApplies, func() float64 { return applies })
	// Hook the watchdog the way StartHistory does, but tick manually for
	// determinism.
	o.History.onSample = func(h *History) { o.runWatchdog(h) }
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	base := time.Unix(9000, 0)
	tick := 0
	step := func() {
		tick++
		commits += 10 // commits always flowing
		o.History.sampleOnce(base.Add(time.Duration(tick) * time.Second))
	}

	for i := 0; i < 4; i++ { // baseline + full stalled window
		step()
	}
	if r := o.StallReason(); !strings.Contains(r, "commits without applies") {
		t.Fatalf("StallReason = %q", r)
	}
	code, body := get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "stalled") {
		t.Fatalf("/readyz while stalled = %d %q", code, body)
	}
	if v := gaugeValue(t, o, "obs_watchdog_stalled"); v != 1 {
		t.Fatalf("obs_watchdog_stalled = %g, want 1", v)
	}

	for i := 0; i < 4; i++ { // recovery: applies catch up
		applies += 10
		step()
	}
	if r := o.StallReason(); r != "" {
		t.Fatalf("StallReason after recovery = %q", r)
	}
	if code, _ := get(t, srv, "/readyz"); code != 200 {
		t.Fatalf("/readyz after recovery = %d", code)
	}
	if v := gaugeValue(t, o, "obs_watchdog_stalled"); v != 0 {
		t.Fatalf("obs_watchdog_stalled = %g, want 0", v)
	}
}

// TestWatchdogQueueRecoveryClearsStall drives the queue-flat-high rule
// end to end through the sampler: a wedge (queue pinned at the cap)
// flips /readyz and the gauge, then the queue draining back down clears
// the stall, restores /readyz to 200, and zeroes the gauge.
func TestWatchdogQueueRecoveryClearsStall(t *testing.T) {
	o := NewObserverWith(ObserverConfig{Watchdog: WatchdogConfig{Window: 3, QueueHighWater: 100}})
	o.SetReady(true)
	depth := 0.0
	o.TrackValue(SeriesQueueDepth, func() float64 { return depth })
	o.History.onSample = func(h *History) { o.runWatchdog(h) }
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	base := time.Unix(9500, 0)
	tick := 0
	step := func() {
		tick++
		o.History.sampleOnce(base.Add(time.Duration(tick) * time.Second))
	}

	// Wedge: the push queue pins at 512 and never drains.
	depth = 512
	for i := 0; i < 4; i++ { // baseline + full window
		step()
	}
	if r := o.StallReason(); !strings.Contains(r, "queue depth flat-high") {
		t.Fatalf("StallReason = %q, want queue-flat-high", r)
	}
	code, body := get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "queue depth flat-high") {
		t.Fatalf("/readyz while wedged = %d %q", code, body)
	}
	if v := gaugeValue(t, o, "obs_watchdog_stalled"); v != 1 {
		t.Fatalf("obs_watchdog_stalled = %g, want 1", v)
	}

	// Recovery: the queue drains below the high-water mark. One falling
	// sample already breaks the flat-high window.
	for _, d := range []float64{300, 80, 0, 0} {
		depth = d
		step()
	}
	if r := o.StallReason(); r != "" {
		t.Fatalf("StallReason after drain = %q, want \"\"", r)
	}
	code, body = get(t, srv, "/readyz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ready") {
		t.Fatalf("/readyz after drain = %d %q, want 200 ready", code, body)
	}
	if v := gaugeValue(t, o, "obs_watchdog_stalled"); v != 0 {
		t.Fatalf("obs_watchdog_stalled = %g, want 0", v)
	}
}

func gaugeValue(t *testing.T, o *Observer, name string) float64 {
	t.Helper()
	return o.Reg().Gauge(name, "").Value()
}

func TestReadyzDraining(t *testing.T) {
	o := NewObserver()
	o.SetReady(true)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	if code, _ := get(t, srv, "/readyz"); code != 200 {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	o.SetDraining()
	code, body := get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz while draining = %d %q", code, body)
	}
	var nilo *Observer
	nilo.SetDraining() // must not panic
	if nilo.Draining() {
		t.Fatal("nil observer draining")
	}
}
