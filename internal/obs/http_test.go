package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthzReadyz(t *testing.T) {
	o := NewObserver()
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, _ := get(t, srv, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetReady = %d, want 503", code)
	}
	o.SetReady(true)
	if code, body := get(t, srv, "/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("/readyz after SetReady = %d %q, want 200 ready", code, body)
	}
	o.SetReady(false)
	if code, _ := get(t, srv, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after SetReady(false) = %d, want 503", code)
	}
}

func TestReadyzDegraded(t *testing.T) {
	o := NewObserver()
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	o.SetReady(true)

	o.SetDegraded("sw1", "redialing")
	o.SetDegraded("ovsdb", "resync")
	code, body := get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while degraded = %d, want 503", code)
	}
	if !strings.Contains(body, "degraded: ovsdb: resync; sw1: redialing") {
		t.Fatalf("/readyz degraded body = %q", body)
	}

	// Recovery is per key: one cleared connection keeps the other's 503.
	o.ClearDegraded("sw1")
	if code, body := get(t, srv, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "ovsdb") {
		t.Fatalf("/readyz with one degraded key = %d %q", code, body)
	}
	o.ClearDegraded("ovsdb")
	if code, body := get(t, srv, "/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("/readyz after full recovery = %d %q", code, body)
	}

	// Draining and not-ready outrank degraded in the reported reason.
	o.SetDegraded("sw1", "")
	o.SetReady(false)
	if _, body := get(t, srv, "/readyz"); !strings.Contains(body, "not ready") {
		t.Fatalf("/readyz not-ready body = %q", body)
	}
}

func TestNilObserverDegradedIsNoOp(t *testing.T) {
	var o *Observer
	o.SetDegraded("x", "y") // must not panic
	o.ClearDegraded("x")
	if r := o.DegradedReasons(); r != nil {
		t.Fatalf("nil observer degraded reasons = %v", r)
	}
}

func TestNilObserverReadyStateIsNoOp(t *testing.T) {
	var o *Observer
	o.SetReady(true) // must not panic
	if o.Ready() {
		t.Fatal("nil observer reports ready")
	}
	o.SetExplainer(nil) // must not panic
}

func TestTracesFiltering(t *testing.T) {
	o := NewObserver()
	base := time.Unix(100, 0)
	for txn := uint64(1); txn <= 3; txn++ {
		o.Tr().Record(txn, "test", Stage{Name: "commit", Start: base, End: base.Add(time.Millisecond)})
	}
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/debug/traces?txn=2")
	if code != 200 {
		t.Fatalf("?txn=2 = %d: %s", code, body)
	}
	var tr Trace
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("?txn=2 not a single trace: %v\n%s", err, body)
	}
	if tr.TxnID != 2 || len(tr.Stages) != 1 {
		t.Fatalf("?txn=2 returned txn %d with %d stages", tr.TxnID, len(tr.Stages))
	}

	if code, _ := get(t, srv, "/debug/traces?txn=99"); code != http.StatusNotFound {
		t.Fatalf("unknown txn = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/debug/traces?txn=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad txn id = %d, want 400", code)
	}

	code, body = get(t, srv, "/debug/traces?limit=2")
	if code != 200 {
		t.Fatalf("?limit=2 = %d", code)
	}
	var dump struct {
		Traces []Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("decoding dump: %v", err)
	}
	if len(dump.Traces) != 2 {
		t.Fatalf("?limit=2 returned %d traces", len(dump.Traces))
	}
	// Most recent two, oldest first.
	if dump.Traces[0].TxnID != 2 || dump.Traces[1].TxnID != 3 {
		t.Fatalf("?limit=2 returned txns %d,%d, want 2,3", dump.Traces[0].TxnID, dump.Traces[1].TxnID)
	}
}

// fakeExplainer answers "known" and fails everything else.
type fakeExplainer struct{}

func (fakeExplainer) Explain(relation, key string, maxDepth, maxNodes int) (any, error) {
	switch relation {
	case "known":
		return map[string]string{"relation": relation, "key": key}, nil
	case "gone":
		return nil, fmt.Errorf("%w: no such fact", ErrNotFound)
	default:
		return nil, errors.New("malformed query")
	}
}

func TestExplainEndpoint(t *testing.T) {
	o := NewObserver()
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	if code, _ := get(t, srv, "/debug/explain?relation=known"); code != http.StatusServiceUnavailable {
		t.Fatalf("no explainer = %d, want 503", code)
	}
	o.SetExplainer(fakeExplainer{})
	if code, _ := get(t, srv, "/debug/explain"); code != http.StatusBadRequest {
		t.Fatalf("missing relation = %d, want 400", code)
	}
	code, body := get(t, srv, "/debug/explain?relation=known&key=k")
	if code != 200 || !strings.Contains(body, `"key": "k"`) {
		t.Fatalf("known = %d %q, want 200 with key", code, body)
	}
	if code, _ := get(t, srv, "/debug/explain?relation=gone"); code != http.StatusNotFound {
		t.Fatalf("ErrNotFound = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/debug/explain?relation=other"); code != http.StatusBadRequest {
		t.Fatalf("other error = %d, want 400", code)
	}
}

// parseHistogram pulls one histogram's buckets, sum, and count out of a
// Prometheus 0.0.4 exposition.
type parsedHist struct {
	buckets []struct {
		le  float64
		cum uint64
	}
	sum   float64
	count uint64
}

func parseHistogram(t *testing.T, exposition, name string) parsedHist {
	t.Helper()
	var h parsedHist
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		series, valStr := fields[0], fields[1]
		switch {
		case strings.HasPrefix(series, name+"_bucket{"):
			start := strings.Index(series, `le="`)
			if start < 0 {
				t.Fatalf("bucket without le label: %q", line)
			}
			leStr := series[start+4:]
			leStr = leStr[:strings.Index(leStr, `"`)]
			var le float64
			if leStr == "+Inf" {
				le = inf()
			} else {
				var err error
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					t.Fatalf("bad le %q: %v", leStr, err)
				}
			}
			cum, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bad bucket value %q: %v", valStr, err)
			}
			h.buckets = append(h.buckets, struct {
				le  float64
				cum uint64
			}{le, cum})
		case series == name+"_sum":
			var err error
			h.sum, err = strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("bad sum %q: %v", valStr, err)
			}
		case series == name+"_count":
			var err error
			h.count, err = strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bad count %q: %v", valStr, err)
			}
		}
	}
	if len(h.buckets) == 0 {
		t.Fatalf("histogram %s not found in exposition:\n%s", name, exposition)
	}
	return h
}

func inf() float64 { return math.Inf(1) }

// TestHistogramExpositionGolden scrapes /metrics and checks the 0.0.4
// structural invariants of the histogram exposition: buckets ordered by
// le and monotonically non-decreasing, the +Inf bucket present and equal
// to _count, and _sum/_count matching the observed samples exactly.
func TestHistogramExpositionGolden(t *testing.T) {
	o := NewObserver()
	h := o.Reg().Histogram("test_seconds", "golden histogram", []float64{0.1, 1, 10})
	samples := []float64{0.05, 0.5, 0.5, 5, 50}
	var wantSum float64
	for _, s := range samples {
		h.Observe(s)
		wantSum += s
	}
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	ph := parseHistogram(t, body, "test_seconds")

	if !sort.SliceIsSorted(ph.buckets, func(a, b int) bool { return ph.buckets[a].le < ph.buckets[b].le }) {
		t.Fatalf("buckets not ordered by le: %+v", ph.buckets)
	}
	for i := 1; i < len(ph.buckets); i++ {
		if ph.buckets[i].cum < ph.buckets[i-1].cum {
			t.Fatalf("bucket counts not monotonic: %+v", ph.buckets)
		}
	}
	last := ph.buckets[len(ph.buckets)-1]
	if last.le != inf() {
		t.Fatalf("last bucket le = %v, want +Inf", last.le)
	}
	if last.cum != ph.count {
		t.Fatalf("+Inf bucket %d != _count %d", last.cum, ph.count)
	}
	if ph.count != uint64(len(samples)) {
		t.Fatalf("_count = %d, want %d", ph.count, len(samples))
	}
	if ph.sum != wantSum {
		t.Fatalf("_sum = %v, want %v", ph.sum, wantSum)
	}
	// Per-bucket golden counts for the fixed samples above.
	want := []uint64{1, 3, 4, 5}
	for i, b := range ph.buckets {
		if b.cum != want[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b.le, b.cum, want[i])
		}
	}
}

// TestHistogramExpositionConsistentUnderWrites scrapes concurrently with
// a writer and checks every scrape is internally consistent: +Inf equals
// _count and buckets stay monotone. (Guards the _count-from-cumulative
// fix; the previous independent counter could disagree transiently.)
func TestHistogramExpositionConsistentUnderWrites(t *testing.T) {
	o := NewObserver()
	h := o.Reg().Histogram("hot_seconds", "hammered histogram", []float64{1, 10})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				h.Observe(float64(i % 20))
			}
		}
	}()
	for i := 0; i < 200; i++ {
		var sb strings.Builder
		o.Reg().WritePrometheus(&sb)
		ph := parseHistogram(t, sb.String(), "hot_seconds")
		for j := 1; j < len(ph.buckets); j++ {
			if ph.buckets[j].cum < ph.buckets[j-1].cum {
				t.Fatalf("scrape %d: buckets not monotonic: %+v", i, ph.buckets)
			}
		}
		if last := ph.buckets[len(ph.buckets)-1]; last.cum != ph.count {
			t.Fatalf("scrape %d: +Inf bucket %d != _count %d", i, last.cum, ph.count)
		}
	}
	close(stop)
	wg.Wait()
}
