package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Stage is one timed step of a transaction's life: the management-plane
// commit, the monitor fan-out, the control-plane delta evaluation (with
// per-stratum sub-stages), or the data-plane push.
type Stage struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Attrs carries stage-scoped measurements (update counts, delta
	// sizes, worker utilization) as integer samples.
	Attrs map[string]int64 `json:"attrs,omitempty"`
}

// Trace is the per-transaction timeline, keyed by the txn ID minted at
// OVSDB commit and propagated through monitor delivery to the controller.
// In a single-process deployment one trace carries the complete
// commit→monitor→delta→push timeline; in a multi-process deployment each
// process's tracer holds the stages it executed, correlated by TxnID.
type Trace struct {
	TxnID  uint64  `json:"txn_id"`
	Source string  `json:"source,omitempty"`
	Stages []Stage `json:"stages"`
}

// clone deep-copies a trace so callers can't race with appends. Attrs
// maps are copied too: the originals may be pooled and reused after the
// trace is evicted from the ring.
func (t *Trace) clone() Trace {
	out := Trace{TxnID: t.TxnID, Source: t.Source, Stages: make([]Stage, len(t.Stages))}
	copy(out.Stages, t.Stages)
	for i := range out.Stages {
		if a := out.Stages[i].Attrs; a != nil {
			c := make(map[string]int64, len(a))
			for k, v := range a {
				c[k] = v
			}
			out.Stages[i].Attrs = c
		}
	}
	return out
}

// attrsPool recycles stage-attribute maps between transactions: the
// controller records two attr-carrying stages per transaction, which at
// sustained load is a measurable per-txn allocation.
var attrsPool = sync.Pool{New: func() any { return make(map[string]int64, 8) }}

// NewAttrs returns an empty stage-attribute map drawn from a shared pool.
// Attach it to a Stage passed to Tracer.Record and do not retain it: the
// tracer reclaims the map when the stage's trace is evicted from the
// ring. Callers that retain attrs must build their own map instead.
func NewAttrs() map[string]int64 {
	m := attrsPool.Get().(map[string]int64)
	clear(m)
	return m
}

// tracePool recycles evicted Trace containers (and their stage slices).
var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// releaseTrace returns an evicted trace and its attr maps to their pools.
func releaseTrace(tr *Trace) {
	for i := range tr.Stages {
		if tr.Stages[i].Attrs != nil {
			attrsPool.Put(tr.Stages[i].Attrs)
		}
		tr.Stages[i] = Stage{}
	}
	tr.Stages = tr.Stages[:0]
	tr.TxnID, tr.Source = 0, ""
	tracePool.Put(tr)
}

// Tracer keeps a bounded in-memory ring of recent transaction traces.
// Recording is cheap (one mutex, one append) and happens once per
// transaction stage, never per tuple. A nil Tracer ignores records.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	byID    map[uint64]*Trace
	order   []uint64 // insertion order for FIFO eviction
	evicted uint64

	// convergence, when set (NewObserver wires it), observes the
	// commit→switch-applied latency whenever a trace that already carries
	// its commit stage gains a switch-applied stage — the end-to-end SLO.
	// Only single-process stacks see both stages in one tracer; across
	// processes the fleet aggregator stitches the same measurement.
	convergence *Histogram
}

// StageCommit and StageSwitchApplied are the trace stages bounding the
// end-to-end convergence measurement: the management-plane commit and
// the data-plane apply.
const (
	StageCommit        = "commit"
	StageSwitchApplied = "switch-applied"
)

// DefaultTraceCapacity bounds the ring when NewTracer is given n <= 0.
const DefaultTraceCapacity = 256

// NewTracer creates a tracer retaining the last n transactions.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	return &Tracer{cap: n, byID: make(map[uint64]*Trace, n)}
}

// Record appends one stage to txnID's trace, creating it (and evicting
// the oldest trace if the ring is full) on first sight. txnID 0 marks an
// event with no originating transaction and is dropped. The source tag
// sticks on first non-empty value.
func (t *Tracer) Record(txnID uint64, source string, st Stage) {
	if t == nil || txnID == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.byID[txnID]
	if tr == nil {
		if len(t.order) >= t.cap {
			old := t.order[0]
			t.order = t.order[1:]
			if otr := t.byID[old]; otr != nil {
				delete(t.byID, old)
				releaseTrace(otr)
			}
			t.evicted++
		}
		tr = tracePool.Get().(*Trace)
		tr.TxnID = txnID
		t.byID[txnID] = tr
		t.order = append(t.order, txnID)
	}
	if tr.Source == "" {
		tr.Source = source
	}
	tr.Stages = append(tr.Stages, st)
	if t.convergence != nil && st.Name == StageSwitchApplied {
		for i := range tr.Stages {
			if tr.Stages[i].Name == StageCommit {
				t.convergence.ObserveDuration(st.End.Sub(tr.Stages[i].Start))
				break
			}
		}
	}
}

// Get returns a copy of txnID's trace.
func (t *Tracer) Get(txnID uint64) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.byID[txnID]
	if tr == nil {
		return Trace{}, false
	}
	return tr.clone(), true
}

// Recent returns up to n traces, oldest first (n <= 0 means all
// retained).
func (t *Tracer) Recent(n int) []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := t.order
	if n > 0 && len(ids) > n {
		ids = ids[len(ids)-n:]
	}
	out := make([]Trace, 0, len(ids))
	for _, id := range ids {
		out = append(out, t.byID[id].clone())
	}
	return out
}

// Evicted returns how many traces the ring has discarded.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// traceDump is the /debug/traces JSON envelope.
type traceDump struct {
	Evicted uint64  `json:"evicted"`
	Traces  []Trace `json:"traces"`
}

// writeTraceJSON renders one trace as JSON with its stages in timeline
// order (the /debug/traces?txn= form).
func writeTraceJSON(w io.Writer, tr Trace) error {
	sort.SliceStable(tr.Stages, func(a, b int) bool { return tr.Stages[a].Start.Before(tr.Stages[b].Start) })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// WriteJSON renders up to n recent traces (0 = all) as JSON, each
// trace's stages sorted by start time so the timeline reads in order.
func (t *Tracer) WriteJSON(w io.Writer, n int) error {
	if t == nil {
		_, err := io.WriteString(w, `{"evicted":0,"traces":[]}`+"\n")
		return err
	}
	dump := traceDump{Evicted: t.Evicted(), Traces: t.Recent(n)}
	if dump.Traces == nil {
		dump.Traces = []Trace{}
	}
	for i := range dump.Traces {
		st := dump.Traces[i].Stages
		sort.SliceStable(st, func(a, b int) bool { return st[a].Start.Before(st[b].Start) })
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
