package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHistorySampleKinds(t *testing.T) {
	h := NewHistory(8)
	var counter, gauge, hSum, hCount float64
	h.TrackRate("rate_total", func() float64 { return counter })
	h.TrackValue("depth", func() float64 { return gauge })
	h.TrackAvg("lat_seconds", func() float64 { return hSum }, func() float64 { return hCount })

	base := time.Unix(5000, 0)
	h.sampleOnce(base) // baseline: rate/avg push nothing, value pushes

	counter, gauge = 10, 3
	hSum, hCount = 0.5, 5
	h.sampleOnce(base.Add(2 * time.Second))

	counter, gauge = 10, 7
	// No histogram observations this tick: avg must be 0, not NaN.
	h.sampleOnce(base.Add(4 * time.Second))

	rate := h.Last("rate_total", 0)
	if len(rate) != 2 {
		t.Fatalf("rate has %d samples, want 2 (baseline pushes none)", len(rate))
	}
	if rate[0].Value != 5 { // 10 counts over 2s
		t.Fatalf("rate[0] = %g, want 5/s", rate[0].Value)
	}
	if rate[1].Value != 0 {
		t.Fatalf("rate[1] = %g, want 0 (counter flat)", rate[1].Value)
	}

	depth := h.Last("depth", 0)
	if len(depth) != 3 || depth[0].Value != 0 || depth[1].Value != 3 || depth[2].Value != 7 {
		t.Fatalf("value series wrong: %+v", depth)
	}

	avg := h.Last("lat_seconds", 0)
	if len(avg) != 2 || avg[0].Value != 0.1 || avg[1].Value != 0 {
		t.Fatalf("avg series wrong: %+v", avg)
	}
}

func TestHistoryRingAndDuplicateTrack(t *testing.T) {
	h := NewHistory(4)
	var v float64
	h.TrackValue("depth", func() float64 { return v })
	// Duplicate registration: first wins, no second series.
	h.TrackValue("depth", func() float64 { return -1 })
	base := time.Unix(6000, 0)
	for i := 0; i < 10; i++ {
		v = float64(i)
		h.sampleOnce(base.Add(time.Duration(i) * time.Second))
	}
	got := h.Last("depth", 0)
	if len(got) != 4 {
		t.Fatalf("ring retained %d samples, want 4", len(got))
	}
	for i, s := range got {
		if want := float64(6 + i); s.Value != want {
			t.Fatalf("sample %d = %g, want %g", i, s.Value, want)
		}
	}
	if h.Last("depth", 2)[0].Value != 8 {
		t.Fatal("Last(k) did not keep newest")
	}
}

func TestHistorySamplerStartStop(t *testing.T) {
	o := NewObserver()
	c := o.Reg().Counter("ticks_total", "t")
	o.TrackRate("ticks_total", func() float64 { return float64(c.Value()) })
	o.StartHistory(5 * time.Millisecond)
	defer o.StopHistory()
	deadline := time.Now().Add(2 * time.Second)
	for len(o.Hist().Last("ticks_total", 0)) == 0 {
		c.Inc()
		if time.Now().After(deadline) {
			t.Fatal("sampler produced no rate samples")
		}
		time.Sleep(time.Millisecond)
	}
	o.StopHistory()
	o.StopHistory() // idempotent
	n := len(o.Hist().Last("ticks_total", 0))
	time.Sleep(20 * time.Millisecond)
	if got := len(o.Hist().Last("ticks_total", 0)); got != n {
		t.Fatalf("sampler still running after Stop: %d -> %d samples", n, got)
	}
}

func TestDebugHistoryEndpoint(t *testing.T) {
	o := NewObserver()
	var depth float64
	o.TrackValue("core_queue_depth", func() float64 { return depth })
	o.TrackValue("other_series", func() float64 { return 1 })
	base := time.Unix(7000, 0)
	for i := 0; i < 3; i++ {
		depth = float64(10 * i)
		o.Hist().sampleOnce(base.Add(time.Duration(i) * time.Second))
	}
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	// Without ?series= the endpoint answers with the catalog of series
	// names, not the full sample dump.
	var names struct {
		Capacity int      `json:"capacity"`
		Series   []string `json:"series"`
	}
	if err := json.Unmarshal([]byte(get2(t, srv, "/debug/history")), &names); err != nil {
		t.Fatal(err)
	}
	if len(names.Series) != 2 || names.Capacity != DefaultHistorySamples {
		t.Fatalf("name catalog has %d series, capacity %d", len(names.Series), names.Capacity)
	}
	if names.Series[0] != "core_queue_depth" || names.Series[1] != "other_series" {
		t.Fatalf("name catalog wrong: %v", names.Series)
	}

	var dump struct {
		Capacity int `json:"capacity"`
		Series   []struct {
			Name    string   `json:"name"`
			Kind    string   `json:"kind"`
			Last    float64  `json:"last"`
			Delta   float64  `json:"delta"`
			Min     float64  `json:"min"`
			Max     float64  `json:"max"`
			Samples []Sample `json:"samples"`
		} `json:"series"`
	}

	if err := json.Unmarshal([]byte(get2(t, srv, "/debug/history?series=core_queue_depth&n=2")), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Series) != 1 {
		t.Fatalf("?series= returned %d series, want 1", len(dump.Series))
	}
	s := dump.Series[0]
	if s.Name != "core_queue_depth" || s.Kind != "value" || len(s.Samples) != 2 {
		t.Fatalf("series wrong: %+v", s)
	}
	if s.Last != 20 || s.Delta != 10 || s.Min != 10 || s.Max != 20 {
		t.Fatalf("summary wrong: last=%g delta=%g min=%g max=%g", s.Last, s.Delta, s.Min, s.Max)
	}
}
