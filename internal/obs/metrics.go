// Package obs is the cross-plane observability subsystem: a stdlib-only
// metrics registry (atomic counters, gauges, fixed-bucket histograms with
// Prometheus text exposition), a bounded transaction tracer that stitches
// one management-plane commit to its control-plane evaluation and
// data-plane push, and an opt-in HTTP server exposing both plus pprof.
//
// Every type is safe to use through nil pointers: a nil *Registry hands
// out nil instruments whose methods are no-ops, so instrumented code
// never branches on "is observability enabled". The update paths of
// pre-registered instruments take no locks and perform no allocations —
// cheap enough for the engine and push hot paths.
//
// Metric naming follows <plane>_<noun>_<unit>: ovsdb_* (management
// plane), dl_* (control-plane engine), core_* (controller sync loop),
// p4rt_* / switchsim_* (data plane). Counters end in _total; latencies
// are seconds histograms over LatencyBuckets; sizes use SizeBuckets.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the default histogram bounds for durations in
// seconds: 5µs to 2.5s in a 1-2.5-5 progression (+Inf is implicit). They
// cover the repo's whole dynamic range, from sub-stratum evaluation to a
// full-stack push over TCP.
var LatencyBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5,
}

// SizeBuckets are the default histogram bounds for counts (batch sizes,
// delta sizes): powers of four up to 64Ki.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

// Label is one name="value" pair attached to a series.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// instrument is the common identity of one registered series.
type instrument struct {
	name   string
	labels string // rendered {k="v",...} suffix, "" when unlabeled
}

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; a nil Counter ignores updates.
type Counter struct {
	inst instrument
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. A nil Gauge ignores
// updates.
type Gauge struct {
	inst instrument
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, d)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed cumulative-at-exposition
// buckets. Observe is lock-free and allocation-free. A nil Histogram
// ignores observations.
type Histogram struct {
	inst   instrument
	bounds []float64       // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// addFloat atomically adds d to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// family groups all series sharing a metric name (one TYPE line each).
type family struct {
	name, help, typ string
	series          []*instrument // registration order; sorted at exposition
	byKey           map[string]any
}

// Registry holds registered instruments. Registration takes a lock and
// may allocate; instrument updates never do. All methods are nil-safe:
// a nil *Registry returns nil instruments.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders labels into the canonical {k="v",...} suffix, sorted
// by key, which doubles as the series identity within a family.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup finds or creates the family and returns the existing series, if
// any. Caller holds r.mu.
func (r *Registry) lookup(name, help, typ, key string) (*family, any) {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]any)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f, f.byKey[key]
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, got := r.lookup(name, help, "counter", key)
	if got != nil {
		return got.(*Counter)
	}
	c := &Counter{inst: instrument{name: name, labels: key}}
	f.byKey[key] = c
	f.series = append(f.series, &c.inst)
	return c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, got := r.lookup(name, help, "gauge", key)
	if got != nil {
		return got.(*Gauge)
	}
	g := &Gauge{inst: instrument{name: name, labels: key}}
	f.byKey[key] = g
	f.series = append(f.series, &g.inst)
	return g
}

// CounterFunc is a counter series whose value is computed at scrape
// time by a callback, for monotonic totals a subsystem already tracks
// internally — sparing its hot path a second per-event atomic.
type CounterFunc struct {
	inst instrument
	fn   func() uint64
}

// CounterFunc registers (or returns the existing) callback-backed
// counter series. fn must be safe to call from any goroutine and
// monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) *CounterFunc {
	if r == nil {
		return nil
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, got := r.lookup(name, help, "counter", key)
	if got != nil {
		return got.(*CounterFunc)
	}
	c := &CounterFunc{inst: instrument{name: name, labels: key}, fn: fn}
	f.byKey[key] = c
	f.series = append(f.series, &c.inst)
	return c
}

// GaugeFunc is a gauge series whose value is computed at scrape time by
// a callback — for values derived from state rather than maintained by
// explicit Set calls (e.g. the age of the last WAL snapshot).
type GaugeFunc struct {
	inst instrument
	fn   func() float64
}

// GaugeFunc registers (or returns the existing) callback-backed gauge
// series. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) *GaugeFunc {
	if r == nil {
		return nil
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, got := r.lookup(name, help, "gauge", key)
	if got != nil {
		return got.(*GaugeFunc)
	}
	g := &GaugeFunc{inst: instrument{name: name, labels: key}, fn: fn}
	f.byKey[key] = g
	f.series = append(f.series, &g.inst)
	return g
}

// Histogram registers (or returns the existing) histogram series with the
// given ascending bucket upper bounds (nil selects LatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = LatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, got := r.lookup(name, help, "histogram", key)
	if got != nil {
		return got.(*Histogram)
	}
	h := &Histogram{
		inst:   instrument{name: name, labels: key},
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	f.byKey[key] = h
	f.series = append(f.series, &h.inst)
	return h
}

// snapshotFamilies returns families and their series in deterministic
// (name, then label) order.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	out := make([]*family, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		out = append(out, f)
	}
	return out
}

// formatFloat renders a sample value in Prometheus text form.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histLabels merges an extra le label into a rendered label suffix.
func histLabels(base, le string) string {
	if base == "" {
		return `{le="` + le + `"}`
	}
	return base[:len(base)-1] + `,le="` + le + `"}`
}

// WritePrometheus writes every registered series in the Prometheus text
// exposition format (version 0.0.4), sorted for determinism.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var sb strings.Builder
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		for _, inst := range f.series {
			switch m := f.byKey[inst.labels].(type) {
			case *Counter:
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, inst.labels, m.Value())
			case *CounterFunc:
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, inst.labels, m.fn())
			case *Gauge:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, inst.labels, formatFloat(m.Value()))
			case *GaugeFunc:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, inst.labels, formatFloat(m.fn()))
			case *Histogram:
				cum := uint64(0)
				for i, b := range m.bounds {
					cum += m.counts[i].Load()
					fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, histLabels(inst.labels, formatFloat(b)), cum)
				}
				cum += m.counts[len(m.bounds)].Load()
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, histLabels(inst.labels, "+Inf"), cum)
				fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name, inst.labels, formatFloat(m.Sum()))
				// _count is derived from the same cumulative sum as the
				// +Inf bucket: the 0.0.4 format requires them equal, and
				// the separate count atomic can transiently disagree while
				// concurrent Observes are in flight.
				fmt.Fprintf(&sb, "%s_count%s %d\n", f.name, inst.labels, cum)
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Snapshot returns every series as a flat map keyed by the exposition
// series name (histograms expand to _bucket/_sum/_count samples), for
// embedding in machine-readable benchmark output.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, f := range r.snapshotFamilies() {
		for _, inst := range f.series {
			switch m := f.byKey[inst.labels].(type) {
			case *Counter:
				out[f.name+inst.labels] = float64(m.Value())
			case *CounterFunc:
				out[f.name+inst.labels] = float64(m.fn())
			case *Gauge:
				out[f.name+inst.labels] = m.Value()
			case *GaugeFunc:
				out[f.name+inst.labels] = m.fn()
			case *Histogram:
				cum := uint64(0)
				for i, b := range m.bounds {
					cum += m.counts[i].Load()
					out[f.name+"_bucket"+histLabels(inst.labels, formatFloat(b))] = float64(cum)
				}
				cum += m.counts[len(m.bounds)].Load()
				out[f.name+"_bucket"+histLabels(inst.labels, "+Inf")] = float64(cum)
				out[f.name+"_sum"+inst.labels] = m.Sum()
				// As in WritePrometheus: _count must equal the +Inf bucket.
				out[f.name+"_count"+inst.labels] = float64(cum)
			}
		}
	}
	return out
}
