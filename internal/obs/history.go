package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// In-process metrics history: a sampler goroutine periodically reads
// selected counters/gauges/histograms and stores a derived value per
// tick into fixed-size rings — counter rates (per second), gauge
// values, and histogram interval averages (Δsum/Δcount). /debug/history
// then answers "what did push latency look like over the last ten
// minutes" without an external Prometheus, and the stall watchdog
// derives plane health from the same rings.

// Sample is one point of a history series.
type Sample struct {
	Time  time.Time `json:"t"`
	Value float64   `json:"v"`
}

// SeriesKind says how a series' per-tick value is derived from its
// underlying instrument.
type SeriesKind string

const (
	// KindRate stores the counter's increase per second since the last
	// tick.
	KindRate SeriesKind = "rate"
	// KindValue stores the gauge's (or function's) current value.
	KindValue SeriesKind = "value"
	// KindAvg stores the mean of the histogram observations made since
	// the last tick (0 when none were made).
	KindAvg SeriesKind = "avg"
)

// hSeries is one tracked series: a cumulative reader plus its ring.
type hSeries struct {
	name string
	kind SeriesKind
	read func() (sum, count float64)

	lastSum, lastCount float64
	buf                []Sample
	n                  uint64 // samples ever pushed
}

func (s *hSeries) push(t time.Time, v float64) {
	s.buf[s.n%uint64(len(s.buf))] = Sample{Time: t, Value: v}
	s.n++
}

// last returns up to k newest samples, oldest first.
func (s *hSeries) last(k int) []Sample {
	retained := int(s.n)
	if retained > len(s.buf) {
		retained = len(s.buf)
	}
	if k <= 0 || k > retained {
		k = retained
	}
	out := make([]Sample, 0, k)
	for i := s.n - uint64(k); i < s.n; i++ {
		out = append(out, s.buf[i%uint64(len(s.buf))])
	}
	return out
}

// DefaultHistorySamples is the per-series ring size when NewHistory is
// given n <= 0.
const DefaultHistorySamples = 512

// DefaultHistoryInterval is the sampling interval when Start is given
// d <= 0.
const DefaultHistoryInterval = time.Second

// History holds the tracked series and the sampler state. A nil
// *History ignores tracking and sampling.
type History struct {
	mu       sync.Mutex
	cap      int
	series   []*hSeries
	byName   map[string]*hSeries
	lastTick time.Time
	interval time.Duration
	stop     chan struct{}
	// onSample, when set, runs after every tick outside the lock (the
	// watchdog hook).
	onSample func(*History)
}

// NewHistory creates a history whose series each retain n samples.
func NewHistory(n int) *History {
	if n <= 0 {
		n = DefaultHistorySamples
	}
	return &History{cap: n, byName: make(map[string]*hSeries)}
}

// track registers one series; the first registration of a name wins.
func (h *History) track(name string, kind SeriesKind, read func() (float64, float64)) {
	if h == nil || read == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.byName[name]; dup {
		return
	}
	s := &hSeries{name: name, kind: kind, read: read, buf: make([]Sample, h.cap)}
	h.byName[name] = s
	h.series = append(h.series, s)
}

// TrackRate samples read() as a cumulative counter, storing its rate.
func (h *History) TrackRate(name string, read func() float64) {
	h.track(name, KindRate, func() (float64, float64) { return read(), 0 })
}

// TrackValue samples read() as an instantaneous value.
func (h *History) TrackValue(name string, read func() float64) {
	h.track(name, KindValue, func() (float64, float64) { return read(), 0 })
}

// TrackAvg samples a histogram's cumulative sum and count, storing the
// per-interval mean observation.
func (h *History) TrackAvg(name string, sum, count func() float64) {
	if sum == nil || count == nil {
		return
	}
	h.track(name, KindAvg, func() (float64, float64) { return sum(), count() })
}

// sampleOnce takes one sample of every series at the given instant. The
// first tick only establishes baselines for rate/avg series (their
// deltas need two readings).
func (h *History) sampleOnce(now time.Time) {
	if h == nil {
		return
	}
	h.mu.Lock()
	first := h.lastTick.IsZero()
	elapsed := now.Sub(h.lastTick).Seconds()
	for _, s := range h.series {
		sum, count := s.read()
		switch s.kind {
		case KindValue:
			s.push(now, sum)
		case KindRate:
			if !first && elapsed > 0 {
				s.push(now, (sum-s.lastSum)/elapsed)
			}
		case KindAvg:
			if !first {
				v := 0.0
				if dc := count - s.lastCount; dc > 0 {
					v = (sum - s.lastSum) / dc
				}
				s.push(now, v)
			}
		}
		s.lastSum, s.lastCount = sum, count
	}
	h.lastTick = now
	cb := h.onSample
	h.mu.Unlock()
	if cb != nil {
		cb(h)
	}
}

// Start launches the sampler goroutine at the given interval (<= 0
// selects DefaultHistoryInterval). A second Start is a no-op until Stop.
func (h *History) Start(interval time.Duration) {
	if h == nil {
		return
	}
	if interval <= 0 {
		interval = DefaultHistoryInterval
	}
	h.mu.Lock()
	if h.stop != nil {
		h.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	h.stop = stop
	h.interval = interval
	h.mu.Unlock()
	// Baseline immediately so the first interval's deltas are usable.
	h.sampleOnce(time.Now())
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				h.sampleOnce(now)
			}
		}
	}()
}

// Stop halts the sampler goroutine (retained samples stay readable).
func (h *History) Stop() {
	if h == nil {
		return
	}
	h.mu.Lock()
	stop := h.stop
	h.stop = nil
	h.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}

// Last returns up to k newest samples of one series, oldest first.
func (h *History) Last(name string, k int) []Sample {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.byName[name]
	if s == nil {
		return nil
	}
	return s.last(k)
}

// Names returns the tracked series names in registration order.
func (h *History) Names() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.series))
	for i, s := range h.series {
		out[i] = s.name
	}
	return out
}

// historyNamesJSON is the /debug/history envelope when no series is
// selected: the catalog of names a ?series= query can ask for.
type historyNamesJSON struct {
	IntervalSeconds float64  `json:"interval_seconds"`
	Capacity        int      `json:"capacity"`
	Names           []string `json:"series"`
}

// WriteNamesJSON dumps the available series names (the no-?series=
// /debug/history answer).
func (h *History) WriteNamesJSON(w io.Writer) error {
	dump := historyNamesJSON{Names: []string{}}
	if h != nil {
		h.mu.Lock()
		dump.IntervalSeconds = h.interval.Seconds()
		dump.Capacity = h.cap
		for _, s := range h.series {
			dump.Names = append(dump.Names, s.name)
		}
		h.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// historySeriesJSON is one series in the /debug/history dump.
type historySeriesJSON struct {
	Name string     `json:"name"`
	Kind SeriesKind `json:"kind"`
	// Last is the newest sample value; Delta is Last minus the previous
	// sample (the computed per-tick change).
	Last    float64  `json:"last"`
	Delta   float64  `json:"delta"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Samples []Sample `json:"samples"`
}

// historyDump is the /debug/history JSON envelope.
type historyDump struct {
	IntervalSeconds float64             `json:"interval_seconds"`
	Capacity        int                 `json:"capacity"`
	Series          []historySeriesJSON `json:"series"`
}

// WriteJSON dumps the tracked series (name "" = all) with their newest
// n samples (n <= 0 = all retained) plus computed summary values.
func (h *History) WriteJSON(w io.Writer, name string, n int) error {
	dump := historyDump{Series: []historySeriesJSON{}}
	if h != nil {
		h.mu.Lock()
		dump.IntervalSeconds = h.interval.Seconds()
		dump.Capacity = h.cap
		for _, s := range h.series {
			if name != "" && s.name != name {
				continue
			}
			sj := historySeriesJSON{Name: s.name, Kind: s.kind, Samples: s.last(n)}
			for i, sm := range sj.Samples {
				if i == 0 || sm.Value < sj.Min {
					sj.Min = sm.Value
				}
				if i == 0 || sm.Value > sj.Max {
					sj.Max = sm.Value
				}
			}
			if k := len(sj.Samples); k > 0 {
				sj.Last = sj.Samples[k-1].Value
				if k > 1 {
					sj.Delta = sj.Last - sj.Samples[k-2].Value
				}
			}
			dump.Series = append(dump.Series, sj)
		}
		h.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// --- Observer conveniences (all nil-safe) ---

// Hist returns the history (nil when the observer is disabled).
func (o *Observer) Hist() *History {
	if o == nil {
		return nil
	}
	return o.History
}

// TrackRate adds a counter-rate series to the history.
func (o *Observer) TrackRate(name string, read func() float64) { o.Hist().TrackRate(name, read) }

// TrackValue adds an instantaneous-value series to the history.
func (o *Observer) TrackValue(name string, read func() float64) { o.Hist().TrackValue(name, read) }

// TrackHistogramAvg adds a per-interval mean series for a histogram.
func (o *Observer) TrackHistogramAvg(name string, hist *Histogram) {
	if hist == nil {
		return
	}
	o.Hist().TrackAvg(name, hist.Sum, func() float64 { return float64(hist.Count()) })
}

// StartHistory starts the sampler at the given interval and hooks the
// stall watchdog to its ticks.
func (o *Observer) StartHistory(interval time.Duration) {
	if o == nil || o.History == nil {
		return
	}
	o.History.mu.Lock()
	o.History.onSample = func(h *History) { o.runWatchdog(h) }
	o.History.mu.Unlock()
	o.History.Start(interval)
}

// StopHistory halts the sampler.
func (o *Observer) StopHistory() { o.Hist().Stop() }
