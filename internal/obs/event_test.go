package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventRingWraparound(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Append(Ev("core", "push.start").WithTxn(uint64(i)))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	events, evicted, total := r.Snapshot(EventFilter{})
	if total != 10 || evicted != 6 {
		t.Fatalf("total=%d evicted=%d, want 10, 6", total, evicted)
	}
	if len(events) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(events))
	}
	for i, ev := range events {
		if want := uint64(7 + i); ev.Seq != want || ev.Txn != want {
			t.Fatalf("event %d: seq=%d txn=%d, want %d (oldest-first)", i, ev.Seq, ev.Txn, want)
		}
	}
}

func TestEventFieldOverflowDropped(t *testing.T) {
	ev := Ev("core", "delta.done")
	for i := 0; i < maxEventFields+3; i++ {
		ev = ev.F(fmt.Sprintf("f%d", i), int64(i))
	}
	if int(ev.nf) != maxEventFields {
		t.Fatalf("nf = %d, want %d", ev.nf, maxEventFields)
	}
	if _, ok := ev.Field(fmt.Sprintf("f%d", maxEventFields)); ok {
		t.Fatal("overflow field retained")
	}
	if v, ok := ev.Field("f0"); !ok || v != 0 {
		t.Fatalf("f0 = %d,%v, want 0,true", v, ok)
	}
}

func TestEventFilterCombos(t *testing.T) {
	r := NewRecorder(64)
	base := time.Unix(1000, 0)
	// Interleave planes and txns with increasing timestamps.
	for i := 1; i <= 12; i++ {
		plane, kind := "ovsdb", "txn.commit"
		if i%2 == 0 {
			plane, kind = "core", "push.start"
		}
		r.Append(Ev(plane, kind).WithTxn(uint64(i%3 + 1)).At(base.Add(time.Duration(i) * time.Second)))
	}

	cases := []struct {
		name string
		f    EventFilter
		want int
	}{
		{"all", EventFilter{}, 12},
		{"plane", EventFilter{Plane: "core"}, 6},
		{"kind", EventFilter{Kind: "txn.commit"}, 6},
		{"txn", EventFilter{Txn: 2}, 4},                       // i = 1, 4, 7, 10
		{"plane+txn", EventFilter{Plane: "ovsdb", Txn: 2}, 2}, // i = 1, 7
		{"since-seq", EventFilter{SinceSeq: 9}, 3},
		{"since-time", EventFilter{Since: base.Add(10 * time.Second)}, 3},
		{"plane+txn+since", EventFilter{Plane: "ovsdb", Txn: 2, SinceSeq: 4}, 1}, // i = 7
		{"limit", EventFilter{Limit: 5}, 5},
		{"plane+limit", EventFilter{Plane: "core", Limit: 2}, 2},
	}
	for _, tc := range cases {
		events, _, _ := r.Snapshot(tc.f)
		if len(events) != tc.want {
			t.Errorf("%s: %d events, want %d", tc.name, len(events), tc.want)
		}
		for i := 1; i < len(events); i++ {
			if events[i].Seq <= events[i-1].Seq {
				t.Errorf("%s: events out of order at %d", tc.name, i)
			}
		}
	}
	// Limit keeps the NEWEST matches.
	events, _, _ := r.Snapshot(EventFilter{Limit: 2})
	if events[0].Seq != 11 || events[1].Seq != 12 {
		t.Fatalf("limit kept seqs %d,%d, want 11,12", events[0].Seq, events[1].Seq)
	}
}

func TestEventMinLevelFiltersDebug(t *testing.T) {
	r := NewRecorder(8)
	r.SetMinLevel(LevelInfo)
	r.Append(Ev("dl", "stratum.eval").Debug())
	r.Append(Ev("dl", "apply.end"))
	events, _, total := r.Snapshot(EventFilter{})
	if total != 1 || len(events) != 1 || events[0].Kind != "apply.end" {
		t.Fatalf("min-level filter kept %d events (total %d)", len(events), total)
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := Ev("p4rt", "rpc.write").WithTxn(7).WithDevice("sw0").
		At(time.Unix(42, 0).UTC()).F("updates", 3).F("rpc_us", 1500)
	in.Seq = 9
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Event
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Seq != 9 || out.Plane != "p4rt" || out.Kind != "rpc.write" ||
		out.Txn != 7 || out.Device != "sw0" {
		t.Fatalf("round trip lost identity: %+v", out)
	}
	if v, ok := out.Field("updates"); !ok || v != 3 {
		t.Fatalf("round trip lost field: %d,%v", v, ok)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Append(Ev("core", "push.start")) // must not panic
	r.SetMinLevel(LevelInfo)
	if r.Len() != 0 {
		t.Fatal("nil recorder has length")
	}
	events, evicted, total := r.Snapshot(EventFilter{})
	if events != nil || evicted != 0 || total != 0 {
		t.Fatal("nil recorder snapshot nonempty")
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb, EventFilter{}); err != nil {
		t.Fatal(err)
	}
}

// TestEventHotPathZeroAlloc guards the flight recorder's acceptance
// criterion: appending an event — the per-transaction hot path in every
// plane — must not allocate, enabled or disabled.
func TestEventHotPathZeroAlloc(t *testing.T) {
	var nr *Recorder
	if allocs := testing.AllocsPerRun(200, func() {
		nr.Append(Ev("core", "device.write").WithTxn(1).WithDevice("sw0").
			F("updates", 4).F("write_us", 120))
	}); allocs != 0 {
		t.Errorf("disabled Append: %v allocs/op, want 0", allocs)
	}

	r := NewRecorder(64)
	if allocs := testing.AllocsPerRun(200, func() {
		r.Append(Ev("core", "device.write").WithTxn(1).WithDevice("sw0").
			At(time.Unix(1, 0)).F("updates", 4).F("write_us", 120))
	}); allocs != 0 {
		t.Errorf("enabled Append: %v allocs/op, want 0", allocs)
	}

	// Below-min-level events must stay alloc-free too (the common case
	// once an operator raises the level).
	r.SetMinLevel(LevelInfo)
	if allocs := testing.AllocsPerRun(200, func() {
		r.Append(Ev("dl", "stratum.eval").Debug().F("rounds", 2))
	}); allocs != 0 {
		t.Errorf("filtered Append: %v allocs/op, want 0", allocs)
	}
}

func TestDebugEventsEndpoint(t *testing.T) {
	o := NewObserver()
	rec := o.Rec()
	base := time.Unix(2000, 0).UTC()
	rec.Append(Ev("ovsdb", "txn.commit").WithTxn(1).At(base).F("ops", 2))
	rec.Append(Ev("core", "push.start").WithTxn(1).At(base.Add(time.Second)))
	rec.Append(Ev("core", "device.write").WithTxn(1).WithDevice("sw0").At(base.Add(2 * time.Second)))
	rec.Append(Ev("ovsdb", "txn.commit").WithTxn(2).At(base.Add(3 * time.Second)))
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	decode := func(body string) eventDump {
		t.Helper()
		var d struct {
			Total   uint64  `json:"total"`
			Evicted uint64  `json:"evicted"`
			Events  []Event `json:"events"`
		}
		if err := json.Unmarshal([]byte(body), &d); err != nil {
			t.Fatalf("decoding dump: %v\n%s", err, body)
		}
		return eventDump{Total: d.Total, Evicted: d.Evicted, Events: d.Events}
	}

	code, body := get(t, srv, "/debug/events")
	if code != 200 {
		t.Fatalf("/debug/events = %d: %s", code, body)
	}
	if d := decode(body); d.Total != 4 || len(d.Events) != 4 {
		t.Fatalf("unfiltered: total=%d events=%d, want 4,4", d.Total, len(d.Events))
	}
	if d := decode(get2(t, srv, "/debug/events?plane=core")); len(d.Events) != 2 {
		t.Fatalf("?plane=core: %d events, want 2", len(d.Events))
	}
	if d := decode(get2(t, srv, "/debug/events?kind=txn.commit")); len(d.Events) != 2 {
		t.Fatalf("?kind=txn.commit: %d events, want 2", len(d.Events))
	}
	if d := decode(get2(t, srv, "/debug/events?txn=1")); len(d.Events) != 3 {
		t.Fatalf("?txn=1: %d events, want 3", len(d.Events))
	}
	if d := decode(get2(t, srv, "/debug/events?plane=core&txn=1&since=1")); len(d.Events) != 2 {
		t.Fatalf("?plane&txn&since(seq): %d events, want 2", len(d.Events))
	}
	since := base.Add(3 * time.Second).Format(time.RFC3339)
	if d := decode(get2(t, srv, "/debug/events?since="+since)); len(d.Events) != 1 {
		t.Fatalf("?since(RFC3339): %d events, want 1", len(d.Events))
	}
	if d := decode(get2(t, srv, "/debug/events?limit=1")); len(d.Events) != 1 || d.Events[0].Seq != 4 {
		t.Fatalf("?limit=1 did not keep the newest event")
	}

	if code, _ := get(t, srv, "/debug/events?txn=bogus"); code != 400 {
		t.Fatalf("bad txn = %d, want 400", code)
	}
	if code, _ := get(t, srv, "/debug/events?since=yesterday"); code != 400 {
		t.Fatalf("bad since = %d, want 400", code)
	}
}

// get2 is get returning only the body, for one-liner assertions.
func get2(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	code, body := get(t, srv, path)
	if code != 200 {
		t.Fatalf("GET %s = %d: %s", path, code, body)
	}
	return body
}

func TestDebugEventsNDJSON(t *testing.T) {
	o := NewObserver()
	for i := 1; i <= 3; i++ {
		o.Rec().Append(Ev("ovsdb", "txn.commit").WithTxn(uint64(i)))
	}
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/events?format=ndjson&plane=ovsdb")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/x-ndjson") {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var n int
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not a JSON event: %v\n%s", n, err, line)
		}
		n++
		if ev.Txn != uint64(n) {
			t.Fatalf("line %d: txn = %d (events must stream oldest first)", n, ev.Txn)
		}
	}
	if n != 3 {
		t.Fatalf("streamed %d events, want 3", n)
	}
}

// TestEventAppendDumpRace hammers Append from several goroutines while
// concurrently snapshotting and serving dumps; run under -race this
// guards the ring's locking.
func TestEventAppendDumpRace(t *testing.T) {
	o := NewObserver()
	rec := o.Rec()
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					rec.Append(Ev("core", "push.start").WithTxn(uint64(g*1000+i)).
						F("updates", int64(i)))
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		rec.Snapshot(EventFilter{Plane: "core", Limit: 16})
		if code, _ := get(t, srv, "/debug/events?limit=8"); code != 200 {
			t.Errorf("dump %d failed with %d", i, code)
		}
		if code, _ := get(t, srv, "/debug/events?format=ndjson&limit=8"); code != 200 {
			t.Errorf("ndjson dump %d failed with %d", i, code)
		}
	}
	close(stop)
	wg.Wait()
	if rec.Len() == 0 {
		t.Fatal("ring empty after hammer")
	}
}
