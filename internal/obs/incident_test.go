package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestBudgetExceeded(t *testing.T) {
	o := NewObserver()
	if o.BudgetExceeded("push", time.Hour) {
		t.Fatal("zero budgets must disable capture")
	}
	o.SetSlowBudget(Budgets{Push: 10 * time.Millisecond})
	if !o.BudgetExceeded("push", 20*time.Millisecond) {
		t.Fatal("20ms over a 10ms budget not exceeded")
	}
	if o.BudgetExceeded("push", 5*time.Millisecond) {
		t.Fatal("5ms under a 10ms budget exceeded")
	}
	if o.BudgetExceeded("delta", time.Hour) {
		t.Fatal("unset delta budget exceeded")
	}
	if o.BudgetExceeded("bogus", time.Hour) {
		t.Fatal("unknown stage exceeded")
	}
	var nilo *Observer
	if nilo.BudgetExceeded("push", time.Hour) {
		t.Fatal("nil observer exceeded")
	}
	nilo.PinIncident("push", 1, "ovsdb", time.Second, nil) // must not panic
	nilo.SetSlowBudget(AllBudget(time.Second))
}

func TestPinIncidentCapturesEventsAndTrace(t *testing.T) {
	o := NewObserver()
	o.SetSlowBudget(AllBudget(time.Millisecond))
	base := time.Unix(3000, 0)
	o.Rec().Append(Ev("ovsdb", "txn.commit").WithTxn(5).At(base))
	o.Rec().Append(Ev("core", "push.start").WithTxn(5).At(base.Add(time.Second)))
	o.Rec().Append(Ev("ovsdb", "txn.commit").WithTxn(6)) // other txn, not captured
	o.Tr().Record(5, "ovsdb", Stage{Name: "commit", Start: base, End: base.Add(time.Millisecond)})

	o.PinIncident("push", 5, "ovsdb", 7*time.Millisecond, map[string]string{"why": "slow device"})

	incs, evicted := o.Inc().Snapshot(0)
	if evicted != 0 || len(incs) != 1 {
		t.Fatalf("store has %d incidents (evicted %d), want 1, 0", len(incs), evicted)
	}
	inc := incs[0]
	if inc.Txn != 5 || inc.Stage != "push" || inc.Source != "ovsdb" {
		t.Fatalf("incident identity wrong: %+v", inc)
	}
	if inc.Budget != time.Millisecond || inc.Actual != 7*time.Millisecond {
		t.Fatalf("budget/actual = %v/%v", inc.Budget, inc.Actual)
	}
	if len(inc.Events) != 2 {
		t.Fatalf("captured %d events, want the txn's 2", len(inc.Events))
	}
	if inc.Events[0].Kind != "txn.commit" || inc.Events[1].Kind != "push.start" {
		t.Fatalf("timeline out of order: %s, %s", inc.Events[0].Kind, inc.Events[1].Kind)
	}
	if inc.Trace == nil || inc.Trace.TxnID != 5 {
		t.Fatal("trace not pinned")
	}
	if inc.Detail == nil {
		t.Fatal("detail not pinned")
	}
	if v := o.Reg().Counter("obs_incidents_total", "").Value(); v != 1 {
		t.Fatalf("obs_incidents_total = %d, want 1", v)
	}
}

func TestPinIncidentTxnZeroPinsNoEvents(t *testing.T) {
	o := NewObserver()
	o.SetSlowBudget(AllBudget(time.Millisecond))
	o.Rec().Append(Ev("core", "push.start").WithTxn(1))
	o.Rec().Append(Ev("core", "push.start")) // txn-less
	o.PinIncident("push", 0, "initial", time.Second, nil)
	incs, _ := o.Inc().Snapshot(0)
	if len(incs) != 1 {
		t.Fatalf("%d incidents, want 1", len(incs))
	}
	// EventsFor(0) matches everything; a txn-less incident must not pin
	// the whole ring.
	if len(incs[0].Events) != 0 {
		t.Fatalf("txn-0 incident pinned %d events, want 0", len(incs[0].Events))
	}
}

func TestIncidentStoreFIFOEviction(t *testing.T) {
	s := NewIncidentStore(3)
	for i := 1; i <= 5; i++ {
		s.Add(Incident{Txn: uint64(i)})
	}
	incs, evicted := s.Snapshot(0)
	if evicted != 2 || len(incs) != 3 {
		t.Fatalf("evicted=%d len=%d, want 2, 3", evicted, len(incs))
	}
	for i, inc := range incs {
		if want := uint64(3 + i); inc.Txn != want || inc.Seq != want {
			t.Fatalf("incident %d: txn=%d seq=%d, want %d", i, inc.Txn, inc.Seq, want)
		}
	}
	if got, _ := s.Snapshot(4); len(got) != 1 || got[0].Txn != 4 {
		t.Fatalf("txn filter returned %d incidents", len(got))
	}
}

func TestDebugIncidentsEndpoint(t *testing.T) {
	o := NewObserver()
	o.SetSlowBudget(AllBudget(time.Millisecond))
	o.PinIncident("delta", 3, "ovsdb", 4*time.Millisecond, nil)
	o.PinIncident("push", 4, "ovsdb", 9*time.Millisecond, nil)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	var dump struct {
		Evicted   uint64     `json:"evicted"`
		Incidents []Incident `json:"incidents"`
	}
	if err := json.Unmarshal([]byte(get2(t, srv, "/debug/incidents")), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Incidents) != 2 {
		t.Fatalf("%d incidents, want 2", len(dump.Incidents))
	}
	if err := json.Unmarshal([]byte(get2(t, srv, "/debug/incidents?txn=4")), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Incidents) != 1 || dump.Incidents[0].Stage != "push" {
		t.Fatalf("?txn=4 returned %d incidents", len(dump.Incidents))
	}
	if code, _ := get(t, srv, "/debug/incidents?txn=bogus"); code != 400 {
		t.Fatalf("bad txn = %d, want 400", code)
	}
}
