package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRuleProfilerTopKAndOther(t *testing.T) {
	p := NewRuleProfiler(3)
	var samples []RuleSample
	for i := 0; i < 10; i++ {
		samples = append(samples, RuleSample{
			ID:     fmt.Sprintf("R%d#0", i),
			Label:  fmt.Sprintf("R%d(x) :- S(x).", i),
			EvalNs: int64((i + 1) * 1000),
		})
	}
	p.ObserveTxn(samples)
	rep := p.Report(0)
	if rep.Txns != 1 || rep.TopK != 3 {
		t.Fatalf("report header = %+v", rep)
	}
	if len(rep.Rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(rep.Rules))
	}
	// The most expensive rules must rank first.
	if rep.Rules[0].ID != "R9#0" || rep.Rules[1].ID != "R8#0" || rep.Rules[2].ID != "R7#0" {
		t.Fatalf("ranking wrong: %+v", rep.Rules)
	}
	if rep.Rules[0].Share <= rep.Rules[1].Share {
		t.Fatalf("shares not descending: %+v", rep.Rules[:2])
	}
	if rep.Other == nil || rep.Other.Count != 7 {
		t.Fatalf("other rollup = %+v, want 7 rules", rep.Other)
	}
	var share float64
	for _, r := range rep.Rules {
		share += r.Share
	}
	share += rep.Other.Share
	if share < 0.999 || share > 1.001 {
		t.Fatalf("shares sum to %g, want 1", share)
	}

	// ?limit= narrows but never widens beyond the configured top-K.
	if got := len(p.Report(2).Rules); got != 2 {
		t.Fatalf("Report(2) returned %d rules", got)
	}
	if got := len(p.Report(100).Rules); got != 3 {
		t.Fatalf("Report(100) returned %d rules, want top-K cap 3", got)
	}
}

func TestRuleProfilerEwmaDecay(t *testing.T) {
	p := NewRuleProfiler(0)
	p.ObserveTxn([]RuleSample{{ID: "A#0", EvalNs: 1_000_000}})
	hot := p.RuleEwmaSeconds("A#0")
	if hot != 1e-3 {
		t.Fatalf("first observation should seed the EWMA: %g", hot)
	}
	// The rule goes idle: subsequent transactions decay its cost.
	for i := 0; i < 20; i++ {
		p.ObserveTxn([]RuleSample{{ID: "B#0", EvalNs: 500}})
	}
	if cooled := p.RuleEwmaSeconds("A#0"); cooled >= hot/50 {
		t.Fatalf("idle rule did not decay: %g -> %g", hot, cooled)
	}
	if ev, der, dt := p.RuleTotals("A#0"); ev != 1_000_000 || der != 0 || dt != 0 {
		t.Fatalf("cumulative totals changed while idle: %d %d %d", ev, der, dt)
	}
}

func TestRuleProfilerNil(t *testing.T) {
	var p *RuleProfiler
	p.ObserveTxn([]RuleSample{{ID: "x"}})
	p.SetMemory(MemSnapshot{Bytes: 1})
	p.EnsureRule("x", "", 0, false)
	if rep := p.Report(0); len(rep.Rules) != 0 || rep.Other != nil {
		t.Fatalf("nil profiler report = %+v", rep)
	}
	var o *Observer
	if o.Prof() != nil {
		t.Fatal("nil observer returned a profiler")
	}
}

func TestDebugRulesAndMemoryEndpoints(t *testing.T) {
	o := NewObserverWith(ObserverConfig{ProfileTopK: 2})
	o.Prof().ObserveTxn([]RuleSample{
		{ID: "Hot#0", Label: "Hot(a,c) :- In(a,b), In(c,b).", Stratum: 2, EvalNs: 9000, Derivations: 100, DeltaTuples: 50},
		{ID: "Cheap#0", Label: "Cheap(b,a) :- In(a,b).", Stratum: 1, EvalNs: 100, Derivations: 10, DeltaTuples: 10},
		{ID: "Mid#0", EvalNs: 500},
	})
	o.Prof().SetMemory(MemSnapshot{
		Relations: []RelMem{
			{Name: "In", Tuples: 10, Indexes: 1, IndexEntries: 10, Bytes: 800},
			{Name: "Hot", Tuples: 100, Bytes: 9000, Stratum: 2},
		},
		Tuples: 110, IndexEntries: 10, Bytes: 9800,
		Provenance: ProvMem{Facts: 110, Bytes: 7040},
	})
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	var rep RuleReport
	if err := json.Unmarshal([]byte(get2(t, srv, "/debug/rules")), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rules) != 2 || rep.Rules[0].ID != "Hot#0" || rep.Other == nil || rep.Other.Count != 1 {
		t.Fatalf("/debug/rules = %+v", rep)
	}
	if rep.Rules[0].Derivations != 100 || rep.Rules[0].DeltaTuples != 50 {
		t.Fatalf("hot rule row = %+v", rep.Rules[0])
	}

	var mem struct {
		At time.Time `json:"at"`
		MemSnapshot
	}
	if err := json.Unmarshal([]byte(get2(t, srv, "/debug/memory")), &mem); err != nil {
		t.Fatal(err)
	}
	if mem.At.IsZero() || mem.Bytes != 9800 || mem.Provenance.Facts != 110 {
		t.Fatalf("/debug/memory = %+v", mem)
	}
	// Relations come sorted by bytes descending.
	if len(mem.Relations) != 2 || mem.Relations[0].Name != "Hot" {
		t.Fatalf("relations not sorted by bytes: %+v", mem.Relations)
	}
}

// TestDebugLimitValidation covers the shared ?limit=/?n= parser: every
// /debug/* list endpoint rejects negative and non-numeric caps with 400
// and accepts both spellings.
func TestDebugLimitValidation(t *testing.T) {
	o := NewObserver()
	o.TrackValue("core_queue_depth", func() float64 { return 1 })
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	for _, path := range []string{
		"/debug/traces?limit=-1",
		"/debug/traces?n=zzz",
		"/debug/events?limit=abc",
		"/debug/events?n=-5",
		"/debug/history?series=core_queue_depth&n=-2",
		"/debug/history?limit=x",
		"/debug/rules?limit=-3",
		"/debug/rules?n=nope",
	} {
		if code, body := get(t, srv, path); code != 400 {
			t.Errorf("GET %s = %d (%q), want 400", path, code, body)
		}
	}
	for _, path := range []string{
		"/debug/traces?limit=2",
		"/debug/traces?n=2",
		"/debug/events?limit=0",
		"/debug/history?series=core_queue_depth&limit=3",
		"/debug/rules?limit=1",
		"/debug/rules",
	} {
		if code, body := get(t, srv, path); code != 200 {
			t.Errorf("GET %s = %d (%q), want 200", path, code, body)
		}
	}
}
