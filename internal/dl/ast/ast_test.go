package ast

import "testing"

func TestPosString(t *testing.T) {
	if got := (Pos{Line: 3, Col: 14}).String(); got != "3:14" {
		t.Errorf("Pos.String() = %q", got)
	}
}

func TestRelationRoleString(t *testing.T) {
	cases := map[RelationRole]string{
		RoleInput:    "input",
		RoleOutput:   "output",
		RoleInternal: "internal",
	}
	for role, want := range cases {
		if got := role.String(); got != want {
			t.Errorf("role %d = %q, want %q", role, got, want)
		}
	}
}

func TestTypeExprString(t *testing.T) {
	tup := &TupleTypeExpr{Elems: []TypeExpr{
		&NamedType{Name: "string"},
		&BitTypeExpr{Width: 48},
	}}
	if got := tup.String(); got != "(string, bit<48>)" {
		t.Errorf("tuple type = %q", got)
	}
}

func TestOpStrings(t *testing.T) {
	// Every binary operator renders to its source spelling, so the
	// typechecker's error messages quote real syntax.
	for op := BinaryOp(0); int(op) < len(binaryOpNames); op++ {
		if op.String() == "" {
			t.Errorf("binary op %d has no name", op)
		}
	}
	if OpNot.String() == "" || OpNeg.String() == "" {
		t.Error("unary ops unnamed")
	}
}

func TestPositionsPropagate(t *testing.T) {
	p := Pos{Line: 7, Col: 2}
	terms := []BodyTerm{
		&Literal{Atom: Atom{Pos: p}}, &Cond{Pos: p}, &Assign{Pos: p}, &GroupBy{Pos: p},
	}
	for _, term := range terms {
		if term.Position() != p {
			t.Errorf("%T position = %v", term, term.Position())
		}
	}
	exprs := []Expr{
		&Var{Pos: p}, &Wildcard{Pos: p}, &BoolLit{Pos: p}, &IntLit{Pos: p},
		&StringLit{Pos: p}, &Binary{Pos: p}, &Unary{Pos: p}, &Call{Pos: p},
		&FieldAccess{Pos: p}, &TupleExpr{Pos: p}, &StructExpr{Pos: p},
		&Cast{Pos: p}, &IfElse{Pos: p},
	}
	for _, e := range exprs {
		if e.Position() != p {
			t.Errorf("%T position = %v", e, e.Position())
		}
	}
	types := []TypeExpr{
		&NamedType{Pos: p}, &BitTypeExpr{Pos: p}, &TupleTypeExpr{Pos: p},
	}
	for _, te := range types {
		if te.Position() != p {
			t.Errorf("%T position = %v", te, te.Position())
		}
	}
}
