// Package ast defines the abstract syntax of the Datalog dialect used for
// control-plane programs. The dialect is modeled on Differential Datalog:
// typed relations, rules with joins, negation, arithmetic and string
// expressions, assignments, group-by aggregation, and recursion.
package ast

import "fmt"

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Program is a parsed program: type definitions, relation declarations,
// functions, and rules, in source order.
type Program struct {
	Typedefs  []*Typedef
	Relations []*RelationDecl
	Functions []*FuncDecl
	Rules     []*Rule
}

// FuncDecl declares a pure function: function Name(p: T, ...): RT = expr.
// Functions may call only previously declared functions (no recursion).
type FuncDecl struct {
	Pos     Pos
	Name    string
	Params  []Param
	RetType TypeExpr
	Body    Expr
}

// Typedef declares a named struct type: typedef Name = Name{f: T, ...}.
type Typedef struct {
	Pos    Pos
	Name   string
	Fields []Param
}

// RelationRole distinguishes how a relation is fed and consumed.
type RelationRole int

// Relation roles.
const (
	RoleInternal RelationRole = iota // derived, not externally visible
	RoleInput                        // fed by the environment
	RoleOutput                       // derived, externally visible deltas
)

func (r RelationRole) String() string {
	switch r {
	case RoleInput:
		return "input"
	case RoleOutput:
		return "output"
	default:
		return "internal"
	}
}

// Param is a named, typed parameter (relation column or struct field).
type Param struct {
	Pos  Pos
	Name string
	Type TypeExpr
}

// RelationDecl declares a relation and its column types.
type RelationDecl struct {
	Pos    Pos
	Role   RelationRole
	Name   string
	Params []Param
}

// Rule is Head :- Body.
type Rule struct {
	Pos  Pos
	Head Atom
	Body []BodyTerm
}

// Atom is a relation applied to argument expressions.
type Atom struct {
	Pos  Pos
	Rel  string
	Args []Expr
}

// BodyTerm is one conjunct of a rule body.
type BodyTerm interface {
	bodyTerm()
	Position() Pos
}

// Literal is a (possibly negated) relation atom in a rule body.
type Literal struct {
	Atom
	Negated bool
}

// Cond is a boolean guard expression in a rule body.
type Cond struct {
	Pos  Pos
	Expr Expr
}

// Assign binds a fresh variable: var x = expr.
type Assign struct {
	Pos  Pos
	Var  string
	Expr Expr
}

// GroupBy aggregates over the bindings produced by the preceding body:
// var x = agg(arg) group_by (k1, ..., kn). It must be the last body term.
type GroupBy struct {
	Pos  Pos
	Var  string
	Agg  string // count, sum, min, max
	Arg  Expr   // may be nil for count()
	Keys []string
}

func (*Literal) bodyTerm() {}
func (*Cond) bodyTerm()    {}
func (*Assign) bodyTerm()  {}
func (*GroupBy) bodyTerm() {}

// Position returns the source position of the term.
func (l *Literal) Position() Pos { return l.Pos }

// Position returns the source position of the term.
func (c *Cond) Position() Pos { return c.Pos }

// Position returns the source position of the term.
func (a *Assign) Position() Pos { return a.Pos }

// Position returns the source position of the term.
func (g *GroupBy) Position() Pos { return g.Pos }

// TypeExpr is a syntactic type.
type TypeExpr interface {
	typeExpr()
	Position() Pos
	String() string
}

// NamedType names a predeclared or typedef'd type: bool, int, string, Foo.
type NamedType struct {
	Pos  Pos
	Name string
}

// BitTypeExpr is bit<N>.
type BitTypeExpr struct {
	Pos   Pos
	Width int
}

// TupleTypeExpr is (T1, ..., Tn).
type TupleTypeExpr struct {
	Pos   Pos
	Elems []TypeExpr
}

func (*NamedType) typeExpr()     {}
func (*BitTypeExpr) typeExpr()   {}
func (*TupleTypeExpr) typeExpr() {}

// Position returns the source position of the type expression.
func (t *NamedType) Position() Pos { return t.Pos }

// Position returns the source position of the type expression.
func (t *BitTypeExpr) Position() Pos { return t.Pos }

// Position returns the source position of the type expression.
func (t *TupleTypeExpr) Position() Pos { return t.Pos }

func (t *NamedType) String() string   { return t.Name }
func (t *BitTypeExpr) String() string { return fmt.Sprintf("bit<%d>", t.Width) }
func (t *TupleTypeExpr) String() string {
	s := "("
	for i, e := range t.Elems {
		if i > 0 {
			s += ", "
		}
		s += e.String()
	}
	return s + ")"
}

// Expr is an expression node.
type Expr interface {
	expr()
	Position() Pos
}

// Var references a variable.
type Var struct {
	Pos  Pos
	Name string
}

// Wildcard is the pattern _ (only legal as a literal argument).
type Wildcard struct {
	Pos Pos
}

// BoolLit is true or false.
type BoolLit struct {
	Pos Pos
	Val bool
}

// IntLit is an integer literal. It is polymorphic: its type (int or
// bit<N>) is inferred from context.
type IntLit struct {
	Pos Pos
	Val uint64
	Neg bool // literal was written with a leading minus
}

// StringLit is a quoted string.
type StringLit struct {
	Pos Pos
	Val string
}

// BinaryOp identifies a binary operator.
type BinaryOp int

// Binary operators.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpConcat // ++ string concatenation
)

var binaryOpNames = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpBitAnd: "&", OpBitOr: "|", OpBitXor: "^", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "and", OpOr: "or", OpConcat: "++",
}

func (op BinaryOp) String() string { return binaryOpNames[op] }

// Binary is L op R.
type Binary struct {
	Pos  Pos
	Op   BinaryOp
	L, R Expr
}

// UnaryOp identifies a unary operator.
type UnaryOp int

// Unary operators.
const (
	OpNot UnaryOp = iota
	OpNeg
	OpBitNot
)

func (op UnaryOp) String() string {
	switch op {
	case OpNot:
		return "not"
	case OpNeg:
		return "-"
	default:
		return "~"
	}
}

// Unary is op E.
type Unary struct {
	Pos Pos
	Op  UnaryOp
	E   Expr
}

// Call is a builtin function application.
type Call struct {
	Pos  Pos
	Name string
	Args []Expr
}

// FieldAccess is E.name on a struct value.
type FieldAccess struct {
	Pos   Pos
	E     Expr
	Field string
}

// TupleExpr is (e1, ..., en) with n != 1.
type TupleExpr struct {
	Pos   Pos
	Elems []Expr
}

// StructExpr constructs a typedef'd struct: Name{f1 = e1, ...}.
type StructExpr struct {
	Pos    Pos
	Name   string
	Fields []StructField
}

// StructField is one field initializer of a StructExpr.
type StructField struct {
	Name string
	Expr Expr
}

// Cast is E as T (numeric conversions only).
type Cast struct {
	Pos  Pos
	E    Expr
	Type TypeExpr
}

// IfElse is if (c) t else e, an expression.
type IfElse struct {
	Pos        Pos
	Cond       Expr
	Then, Else Expr
}

func (*Var) expr()         {}
func (*Wildcard) expr()    {}
func (*BoolLit) expr()     {}
func (*IntLit) expr()      {}
func (*StringLit) expr()   {}
func (*Binary) expr()      {}
func (*Unary) expr()       {}
func (*Call) expr()        {}
func (*FieldAccess) expr() {}
func (*TupleExpr) expr()   {}
func (*StructExpr) expr()  {}
func (*Cast) expr()        {}
func (*IfElse) expr()      {}

// Position returns the expression's source position.
func (e *Var) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *Wildcard) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *BoolLit) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *IntLit) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *StringLit) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *Binary) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *Unary) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *Call) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *FieldAccess) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *TupleExpr) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *StructExpr) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *Cast) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *IfElse) Position() Pos { return e.Pos }
