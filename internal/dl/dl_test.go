package dl

import (
	"strings"
	"testing"

	"repro/internal/dl/engine"
	"repro/internal/dl/value"
)

func TestCompileAndRun(t *testing.T) {
	p, err := Compile(`
		input relation Edge(a: string, b: string)
		output relation Reach(a: string, b: string)
		Reach(a, b) :- Edge(a, b).
		Reach(a, c) :- Reach(a, b), Edge(b, c).
	`)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if p.Relation("Edge") == nil || p.Relation("Nope") != nil {
		t.Errorf("Relation lookup wrong")
	}
	rt, err := p.NewRuntime(engine.Options{})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	_, err = rt.Apply([]engine.Update{
		engine.Insert("Edge", value.Record{value.String("a"), value.String("b")}),
		engine.Insert("Edge", value.Record{value.String("b"), value.String("c")}),
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	recs, err := rt.Contents("Reach")
	if err != nil || len(recs) != 3 {
		t.Fatalf("Reach = %v (err %v), want 3 records", recs, err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"lex error":   `relation R(x: int) @`,
		"parse error": `relation R(x: int`,
		"type error":  `relation R(x: int) R("s") :- R(_).`,
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: Compile succeeded", name)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("%s: error lacks position: %v", name, err)
		}
	}
}
