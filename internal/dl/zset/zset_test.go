package zset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dl/value"
)

func rec(vs ...int64) value.Record {
	r := make(value.Record, len(vs))
	for i, v := range vs {
		r[i] = value.Int(v)
	}
	return r
}

func TestAddConsolidates(t *testing.T) {
	z := New()
	z.Add(rec(1), 2)
	z.Add(rec(1), -1)
	if got := z.Weight(rec(1)); got != 1 {
		t.Errorf("weight = %d, want 1", got)
	}
	z.Add(rec(1), -1)
	if z.Contains(rec(1)) || z.Len() != 0 {
		t.Errorf("zero-weight entry not removed")
	}
	if w := z.Add(rec(2), 0); w != 0 || z.Len() != 0 {
		t.Errorf("Add with weight 0 created an entry")
	}
}

func TestAddAllAndNegate(t *testing.T) {
	a := FromEntries(Entry{rec(1), 1}, Entry{rec(2), 2})
	b := FromEntries(Entry{rec(2), -2}, Entry{rec(3), 5})
	a.AddAll(b)
	want := FromEntries(Entry{rec(1), 1}, Entry{rec(3), 5})
	if !a.Equal(want) {
		t.Errorf("AddAll result = %v, want %v", a.Entries(), want.Entries())
	}
	a.AddAllNegated(a.Clone())
	if !a.IsEmpty() {
		t.Errorf("z - z != empty")
	}
}

func TestDistinct(t *testing.T) {
	z := FromEntries(Entry{rec(1), 3}, Entry{rec(2), 1}, Entry{rec(3), -2})
	d := z.Distinct()
	if d.Weight(rec(1)) != 1 || d.Weight(rec(2)) != 1 || d.Weight(rec(3)) != 0 {
		t.Errorf("Distinct = %v", d.Entries())
	}
}

func TestEntriesDeterministic(t *testing.T) {
	z := FromEntries(Entry{rec(3), 1}, Entry{rec(1), 1}, Entry{rec(2), 1})
	es := z.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Rec.Compare(es[i].Rec) >= 0 {
			t.Fatalf("Entries not sorted: %v", es)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	z := FromEntries(Entry{rec(1), 1})
	c := z.Clone()
	c.Add(rec(1), 5)
	if z.Weight(rec(1)) != 1 {
		t.Errorf("Clone shares state")
	}
}

func TestMinWeight(t *testing.T) {
	if New().MinWeight() != 0 {
		t.Errorf("empty MinWeight != 0")
	}
	z := FromEntries(Entry{rec(1), 4}, Entry{rec(2), -3})
	if z.MinWeight() != -3 {
		t.Errorf("MinWeight = %d", z.MinWeight())
	}
}

type qz struct{ z *ZSet }

func (qz) Generate(r *rand.Rand, _ int) reflect.Value {
	z := New()
	for i := 0; i < r.Intn(10); i++ {
		z.Add(rec(int64(r.Intn(5))), int64(r.Intn(7)-3))
	}
	return reflect.ValueOf(qz{z})
}

// Z-sets form an abelian group under AddAll.
func TestPropGroupLaws(t *testing.T) {
	add := func(a, b *ZSet) *ZSet {
		c := a.Clone()
		c.AddAll(b)
		return c
	}
	commutes := func(a, b qz) bool { return add(a.z, b.z).Equal(add(b.z, a.z)) }
	assoc := func(a, b, c qz) bool {
		return add(add(a.z, b.z), c.z).Equal(add(a.z, add(b.z, c.z)))
	}
	inverse := func(a qz) bool { return add(a.z, a.z.Negate()).IsEmpty() }
	identity := func(a qz) bool { return add(a.z, New()).Equal(a.z) }
	for name, f := range map[string]any{
		"commutes": commutes, "assoc": assoc, "inverse": inverse, "identity": identity,
	} {
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// distinct(a + distinct-preserving ops) is idempotent.
func TestPropDistinctIdempotent(t *testing.T) {
	f := func(a qz) bool {
		d := a.z.Distinct()
		return d.Distinct().Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
