// Package zset implements Z-sets: finite collections of records with signed
// integer weights. Z-sets are the algebra of incremental view maintenance
// (as in DBSP and Differential Datalog): a relation's contents is a Z-set
// with positive weights, and a change ("delta") is a Z-set whose positive
// entries are insertions and negative entries are deletions.
package zset

import (
	"sort"

	"repro/internal/dl/value"
)

// Entry is one weighted record of a Z-set.
type Entry struct {
	Rec    value.Record
	Weight int64
}

// ZSet is a mutable weighted collection of records keyed by canonical
// encoding. The zero value is not ready to use; call New.
type ZSet struct {
	m map[string]Entry
}

// New returns an empty Z-set.
func New() *ZSet { return &ZSet{m: make(map[string]Entry)} }

// NewSized returns an empty Z-set with capacity for n entries.
func NewSized(n int) *ZSet { return &ZSet{m: make(map[string]Entry, n)} }

// FromEntries builds a Z-set from the given entries, summing duplicates.
func FromEntries(entries ...Entry) *ZSet {
	z := NewSized(len(entries))
	for _, e := range entries {
		z.Add(e.Rec, e.Weight)
	}
	return z
}

// Add adds rec with weight w, consolidating immediately: entries whose
// weight reaches zero are removed. It returns the record's new weight.
func (z *ZSet) Add(rec value.Record, w int64) int64 {
	if w == 0 {
		return z.Weight(rec)
	}
	return z.AddKeyed(rec, rec.Key(), w)
}

// AddKeyed is Add with the record's canonical key already computed, so hot
// paths that hold the key (arrangements, the engine's emit path) avoid
// re-encoding the record.
func (z *ZSet) AddKeyed(rec value.Record, key string, w int64) int64 {
	if w == 0 {
		return z.m[key].Weight
	}
	e, ok := z.m[key]
	if !ok {
		z.m[key] = Entry{Rec: rec, Weight: w}
		return w
	}
	e.Weight += w
	if e.Weight == 0 {
		delete(z.m, key)
		return 0
	}
	z.m[key] = e
	return e.Weight
}

// AddAll adds every entry of other into z (z += other).
func (z *ZSet) AddAll(other *ZSet) {
	for k, e := range other.m {
		z.AddKeyed(e.Rec, k, e.Weight)
	}
}

// AddAllNegated subtracts every entry of other from z (z -= other).
func (z *ZSet) AddAllNegated(other *ZSet) {
	for k, e := range other.m {
		z.AddKeyed(e.Rec, k, -e.Weight)
	}
}

// Weight returns the weight of rec (zero if absent).
func (z *ZSet) Weight(rec value.Record) int64 { return z.m[rec.Key()].Weight }

// WeightKey returns the weight stored under a precomputed record key.
func (z *ZSet) WeightKey(key string) int64 { return z.m[key].Weight }

// Contains reports whether rec has nonzero weight.
func (z *ZSet) Contains(rec value.Record) bool { return z.Weight(rec) != 0 }

// Len returns the number of records with nonzero weight.
func (z *ZSet) Len() int { return len(z.m) }

// IsEmpty reports whether the Z-set has no entries.
func (z *ZSet) IsEmpty() bool { return len(z.m) == 0 }

// Each calls f for every entry. Iteration order is unspecified; use
// Entries for deterministic order.
func (z *ZSet) Each(f func(rec value.Record, w int64)) {
	for _, e := range z.m {
		f(e.Rec, e.Weight)
	}
}

// EachKeyed calls f for every entry with its canonical key. Iteration order
// is unspecified; use Entries for deterministic order.
func (z *ZSet) EachKeyed(f func(key string, rec value.Record, w int64)) {
	for k, e := range z.m {
		f(k, e.Rec, e.Weight)
	}
}

// Entries returns the entries sorted by record order (deterministic).
func (z *ZSet) Entries() []Entry {
	out := make([]Entry, 0, len(z.m))
	for _, e := range z.m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rec.Compare(out[j].Rec) < 0 })
	return out
}

// Clone returns an independent copy.
func (z *ZSet) Clone() *ZSet {
	c := NewSized(len(z.m))
	for k, e := range z.m {
		c.m[k] = e
	}
	return c
}

// Negate returns a new Z-set with all weights negated.
func (z *ZSet) Negate() *ZSet {
	c := NewSized(len(z.m))
	for k, e := range z.m {
		c.m[k] = Entry{Rec: e.Rec, Weight: -e.Weight}
	}
	return c
}

// Distinct returns the set-semantics view: every record with positive
// weight appears with weight exactly 1. Records with negative weight are
// dropped (a well-formed relation never has them).
func (z *ZSet) Distinct() *ZSet {
	c := NewSized(len(z.m))
	for k, e := range z.m {
		if e.Weight > 0 {
			c.m[k] = Entry{Rec: e.Rec, Weight: 1}
		}
	}
	return c
}

// Equal reports whether two Z-sets hold exactly the same weighted records.
func (z *ZSet) Equal(other *ZSet) bool {
	if len(z.m) != len(other.m) {
		return false
	}
	for k, e := range z.m {
		if other.m[k].Weight != e.Weight {
			return false
		}
	}
	return true
}

// Clear removes all entries, retaining allocated capacity.
func (z *ZSet) Clear() {
	for k := range z.m {
		delete(z.m, k)
	}
}

// MinWeight returns the smallest weight present, or 0 if empty. A negative
// result on a relation's contents indicates an engine invariant violation.
func (z *ZSet) MinWeight() int64 {
	var min int64
	first := true
	for _, e := range z.m {
		if first || e.Weight < min {
			min = e.Weight
			first = false
		}
	}
	return min
}
