// Package dl is the front door of the control-plane language: it compiles
// Datalog dialect source (lex, parse, type-check) into a program that can
// be instantiated as an incremental runtime.
//
// The dialect is modeled on Differential Datalog (DDlog), the language the
// Full-Stack SDN paper uses for its control plane: typed relations over
// bools, signed integers, bit<N> vectors, strings, and named structs; rules
// with joins, stratified negation, arithmetic/string expressions,
// assignments, group_by aggregation (count, sum, min, max), and recursion.
package dl

import (
	"repro/internal/dl/engine"
	"repro/internal/dl/parser"
	"repro/internal/dl/typecheck"
)

// Program is a compiled control-plane program.
type Program struct {
	// Checked is the typed intermediate representation; cross-plane tooling
	// (codegen, the controller) reads relation schemas from it.
	Checked *typecheck.Program
	// Source is the text the program was compiled from.
	Source string
}

// Compile lexes, parses, and type-checks src.
func Compile(src string) (*Program, error) {
	tree, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	checked, err := typecheck.Check(tree)
	if err != nil {
		return nil, err
	}
	return &Program{Checked: checked, Source: src}, nil
}

// NewRuntime instantiates an incremental runtime for the program.
func (p *Program) NewRuntime(opts engine.Options) (*engine.Runtime, error) {
	return engine.New(p.Checked, opts)
}

// Relation returns the named relation's schema, or nil.
func (p *Program) Relation(name string) *typecheck.Relation {
	return p.Checked.Relation(name)
}
