package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRecordKeyDistinguishes(t *testing.T) {
	a := Record{Int(1), String("x")}
	b := Record{Int(1), String("y")}
	c := Record{Int(1), String("x")}
	if a.Key() == b.Key() {
		t.Errorf("distinct records share a key")
	}
	if a.Key() != c.Key() {
		t.Errorf("equal records have different keys")
	}
}

func TestRecordKeyArityBoundary(t *testing.T) {
	// Field boundaries must not be ambiguous: ("ab","c") != ("a","bc").
	a := Record{String("ab"), String("c")}
	b := Record{String("a"), String("bc")}
	if a.Key() == b.Key() {
		t.Errorf("field boundary ambiguity in record encoding")
	}
}

func TestDecodeRecordRoundTrip(t *testing.T) {
	rec := Record{Bool(true), Int(-9), Bit(12), String("hello"), Tuple(Int(1))}
	got, err := DecodeRecord(rec.AppendEncode(nil), len(rec))
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if !got.Equal(rec) {
		t.Errorf("round trip = %v, want %v", got, rec)
	}
}

func TestRecordCompare(t *testing.T) {
	a := Record{Int(1), Int(2)}
	b := Record{Int(1), Int(3)}
	pre := Record{Int(1)}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Errorf("Compare ordering wrong")
	}
	if pre.Compare(a) != -1 {
		t.Errorf("shorter prefix should order first")
	}
}

func TestRecordProjectAndClone(t *testing.T) {
	r := Record{Int(10), Int(20), Int(30)}
	p := r.Project([]int{2, 0})
	if len(p) != 2 || p[0].Int() != 30 || p[1].Int() != 10 {
		t.Errorf("Project = %v", p)
	}
	c := r.Clone()
	c[0] = Int(99)
	if r[0].Int() != 10 {
		t.Errorf("Clone aliases the original")
	}
}

type qrec struct{ r Record }

func (qrec) Generate(rnd *rand.Rand, _ int) reflect.Value {
	n := rnd.Intn(5)
	rec := make(Record, n)
	for i := range rec {
		rec[i] = randValue(rnd, 2)
	}
	return reflect.ValueOf(qrec{rec})
}

func TestPropRecordKeyInjective(t *testing.T) {
	f := func(x, y qrec) bool {
		if len(x.r) != len(y.r) {
			return true // keys are only compared within a relation (fixed arity)
		}
		return (x.r.Key() == y.r.Key()) == x.r.Equal(y.r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTypeEqualAndString(t *testing.T) {
	s1 := StructType("Pt", Field{"x", IntType}, Field{"y", IntType})
	s2 := StructType("Pt", Field{"x", IntType}, Field{"y", IntType})
	s3 := StructType("Pt2", Field{"x", IntType}, Field{"y", IntType})
	if !s1.Equal(s2) {
		t.Errorf("identical struct types unequal")
	}
	if s1.Equal(s3) {
		t.Errorf("structs with different names equal")
	}
	if !BitType(8).Equal(BitType(8)) || BitType(8).Equal(BitType(9)) {
		t.Errorf("bit width equality wrong")
	}
	if got := BitType(12).String(); got != "bit<12>" {
		t.Errorf("BitType(12).String() = %q", got)
	}
	if got := TupleType(IntType, StringType).String(); got != "(int, string)" {
		t.Errorf("tuple String() = %q", got)
	}
}

func TestTypeCheckValue(t *testing.T) {
	pt := StructType("Pt", Field{"x", BitType(4)}, Field{"y", StringType})
	good := Tuple(Bit(15), String("ok"))
	bad1 := Tuple(Bit(16), String("overflow"))
	bad2 := Tuple(Bit(1))
	if err := pt.CheckValue(good); err != nil {
		t.Errorf("CheckValue(good) = %v", err)
	}
	if err := pt.CheckValue(bad1); err == nil {
		t.Errorf("CheckValue accepted overflowing bit field")
	}
	if err := pt.CheckValue(bad2); err == nil {
		t.Errorf("CheckValue accepted wrong arity")
	}
	if err := BoolType.CheckValue(Int(1)); err == nil {
		t.Errorf("CheckValue accepted kind mismatch")
	}
}

func TestZeroValue(t *testing.T) {
	pt := StructType("Pt", Field{"x", IntType}, Field{"s", StringType})
	z := pt.ZeroValue()
	if z.Field(0).Int() != 0 || z.Field(1).Str() != "" {
		t.Errorf("ZeroValue = %v", z)
	}
	if err := pt.CheckValue(z); err != nil {
		t.Errorf("zero value fails its own type check: %v", err)
	}
}

func TestFieldIndex(t *testing.T) {
	pt := StructType("Pt", Field{"x", IntType}, Field{"y", IntType})
	if pt.FieldIndex("y") != 1 || pt.FieldIndex("z") != -1 {
		t.Errorf("FieldIndex wrong")
	}
}

func TestAccessorsAndKindStrings(t *testing.T) {
	if !Int(1).IsValid() || (Value{}).IsValid() {
		t.Errorf("IsValid wrong")
	}
	if Int(-1).Uint64() != ^uint64(0) || Bit(7).Uint64() != 7 {
		t.Errorf("Uint64 wrong")
	}
	tup := Tuple(Int(1), Int(2))
	if len(tup.Tuple()) != 2 {
		t.Errorf("Tuple() wrong")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Uint64 on string did not panic")
		}
	}()
	_ = String("x").Uint64()
}

func TestKindNames(t *testing.T) {
	names := map[Kind]string{
		KindBool: "bool", KindInt: "int", KindBit: "bit",
		KindString: "string", KindTuple: "tuple", KindInvalid: "invalid",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Int(1), String("x")}
	if r.String() != `(1, "x")` {
		t.Errorf("Record.String() = %q", r.String())
	}
}

func TestTypeEqualMatrix(t *testing.T) {
	tup1 := TupleType(IntType, StringType)
	tup2 := TupleType(IntType, StringType)
	tup3 := TupleType(IntType)
	cases := []struct {
		a, b *Type
		want bool
	}{
		{IntType, IntType, true},
		{IntType, BoolType, false},
		{IntType, nil, false},
		{nil, IntType, false},
		{tup1, tup2, true},
		{tup1, tup3, false},
		{tup1, TupleType(IntType, IntType), false},
		{StructType("A", Field{"x", IntType}), StructType("A", Field{"y", IntType}), false},
		{StructType("A", Field{"x", IntType}), StructType("A", Field{"x", BoolType}), false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: Equal = %v, want %v", i, got, c.want)
		}
	}
	if !IntType.IsNumeric() || !BitType(4).IsNumeric() || StringType.IsNumeric() {
		t.Errorf("IsNumeric wrong")
	}
	var nilT *Type
	if nilT.IsNumeric() {
		t.Errorf("nil IsNumeric true")
	}
}

func TestZeroValuesAllKinds(t *testing.T) {
	for _, tt := range []*Type{BoolType, IntType, StringType, BitType(5),
		TupleType(IntType, BoolType),
		StructType("S", Field{"a", StringType})} {
		z := tt.ZeroValue()
		if err := tt.CheckValue(z); err != nil {
			t.Errorf("zero of %s fails check: %v", tt, err)
		}
	}
}

func TestBitTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("BitType(0) did not panic")
		}
	}()
	BitType(0)
}
