package value

import (
	"strings"
	"sync"
)

// Record is a relation tuple: a fixed-arity sequence of values. Records are
// treated as immutable once constructed.
type Record []Value

// encPool recycles canonical-encoding buffers: wide records overflow any
// reasonable stack buffer, and the engine's arrangements re-encode keys on
// every maintenance operation. See GetEncodeBuf.
var encPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// GetEncodeBuf returns an empty encode buffer from a shared pool. Pass it
// back to PutEncodeBuf when done (after any string conversion of the
// contents).
func GetEncodeBuf() *[]byte {
	return encPool.Get().(*[]byte)
}

// PutEncodeBuf returns a buffer obtained from GetEncodeBuf to the pool.
func PutEncodeBuf(b *[]byte) {
	if cap(*b) > 1<<16 {
		return // don't let one huge record pin a large buffer
	}
	*b = (*b)[:0]
	encPool.Put(b)
}

// Key returns the canonical encoding of the record as a string, suitable for
// use as a map key. Distinct records have distinct keys.
func (r Record) Key() string {
	if len(r) <= 8 {
		// Common case: narrow records encode within a stack buffer.
		var buf [96]byte
		return string(r.AppendEncode(buf[:0]))
	}
	bp := GetEncodeBuf()
	enc := r.AppendEncode(*bp)
	k := string(enc)
	*bp = enc
	PutEncodeBuf(bp)
	return k
}

// AppendEncode appends the record's canonical encoding to dst.
func (r Record) AppendEncode(dst []byte) []byte {
	for _, v := range r {
		dst = v.Encode(dst)
	}
	return dst
}

// DecodeRecord decodes a record of the given arity from its canonical
// encoding.
func DecodeRecord(b []byte, arity int) (Record, error) {
	rec := make(Record, arity)
	var err error
	for i := 0; i < arity; i++ {
		rec[i], b, err = DecodeValue(b)
		if err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// Equal reports whether two records have the same arity and equal fields.
func (r Record) Equal(s Record) bool {
	if len(r) != len(s) {
		return false
	}
	for i := range r {
		if !r[i].Equal(s[i]) {
			return false
		}
	}
	return true
}

// Compare orders records lexicographically by field, shorter records first
// on a shared prefix.
func (r Record) Compare(s Record) int {
	n := len(r)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if c := r[i].Compare(s[i]); c != 0 {
			return c
		}
	}
	return cmpU64(uint64(len(r)), uint64(len(s)))
}

// Clone returns a copy of the record sharing the (immutable) values.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	copy(out, r)
	return out
}

// Project returns a new record holding the fields at the given indexes.
func (r Record) Project(idx []int) Record {
	out := make(Record, len(idx))
	for i, j := range idx {
		out[i] = r[j]
	}
	return out
}

// String renders the record as a parenthesized field list.
func (r Record) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}
