package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Bool(true); !v.Bool() || v.Kind() != KindBool {
		t.Errorf("Bool(true) = %v", v)
	}
	if v := Bool(false); v.Bool() {
		t.Errorf("Bool(false).Bool() = true")
	}
	if v := Int(-42); v.Int() != -42 {
		t.Errorf("Int(-42).Int() = %d", v.Int())
	}
	if v := Bit(0xff); v.Bit() != 0xff {
		t.Errorf("Bit(0xff).Bit() = %d", v.Bit())
	}
	if v := String("hi"); v.Str() != "hi" {
		t.Errorf("String(hi).Str() = %q", v.Str())
	}
	tup := Tuple(Int(1), String("x"))
	if tup.NumFields() != 2 || tup.Field(0).Int() != 1 || tup.Field(1).Str() != "x" {
		t.Errorf("Tuple fields wrong: %v", tup)
	}
}

func TestBitWMasks(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
		want  uint64
	}{
		{0xfff, 8, 0xff},
		{0xfff, 12, 0xfff},
		{0xffffffffffffffff, 64, 0xffffffffffffffff},
		{0xffffffffffffffff, 63, 0x7fffffffffffffff},
		{5, 1, 1},
		{5, 0, 0},
	}
	for _, c := range cases {
		if got := BitW(c.v, c.width).Bit(); got != c.want {
			t.Errorf("BitW(%#x, %d) = %#x, want %#x", c.v, c.width, got, c.want)
		}
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic accessing Int payload of a Bool")
		}
	}()
	_ = Bool(true).Int()
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Int(1), Int(1), true},
		{Int(1), Bit(1), false}, // different kinds never equal
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{Tuple(Int(1), Int(2)), Tuple(Int(1), Int(2)), true},
		{Tuple(Int(1)), Tuple(Int(1), Int(2)), false},
		{Tuple(Tuple(Bool(true))), Tuple(Tuple(Bool(true))), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// A representative ascending sequence.
	asc := []Value{
		Bool(false), Bool(true),
		Int(-5), Int(0), Int(7),
		Bit(0), Bit(9),
		String(""), String("a"), String("ab"),
		Tuple(), Tuple(Int(1)), Tuple(Int(1), Int(0)), Tuple(Int(2)),
	}
	for i := range asc {
		for j := range asc {
			got := asc[i].Compare(asc[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", asc[i], asc[j], got, want)
			}
		}
	}
}

// randValue generates a random value of bounded depth for property tests.
func randValue(r *rand.Rand, depth int) Value {
	k := r.Intn(5)
	if depth <= 0 {
		k = r.Intn(4) // no tuples at the leaves
	}
	switch k {
	case 0:
		return Bool(r.Intn(2) == 1)
	case 1:
		return Int(int64(r.Uint64()))
	case 2:
		return Bit(r.Uint64())
	case 3:
		b := make([]byte, r.Intn(12))
		r.Read(b)
		return String(string(b))
	default:
		n := r.Intn(4)
		fields := make([]Value, n)
		for i := range fields {
			fields[i] = randValue(r, depth-1)
		}
		return Tuple(fields...)
	}
}

type qv struct{ v Value }

func (qv) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(qv{randValue(r, 3)})
}

func TestPropEncodeDecodeRoundTrip(t *testing.T) {
	f := func(x qv) bool {
		enc := x.v.Encode(nil)
		got, rest, err := DecodeValue(enc)
		return err == nil && len(rest) == 0 && got.Equal(x.v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropEncodingInjective(t *testing.T) {
	f := func(x, y qv) bool {
		same := string(x.v.Encode(nil)) == string(y.v.Encode(nil))
		return same == x.v.Equal(y.v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropCompareConsistentWithEqual(t *testing.T) {
	f := func(x, y qv) bool {
		c := x.v.Compare(y.v)
		if x.v.Equal(y.v) != (c == 0) {
			return false
		}
		return c == -y.v.Compare(x.v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropHashEqualValues(t *testing.T) {
	f := func(x qv) bool {
		// Re-building the same value hashes identically.
		clone, _, err := DecodeValue(x.v.Encode(nil))
		return err == nil && clone.Hash() == x.v.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{byte(KindBool)},                         // truncated numeric
		{byte(KindBool), 0, 0, 0, 0, 0, 0, 0, 9}, // bool payload out of range
		{byte(KindString), 200},                  // length longer than data
		{byte(KindTuple), 3, byte(KindBool)},     // truncated tuple
		{99, 1, 2, 3},                            // unknown kind
	}
	for i, b := range bad {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("case %d: DecodeValue(%v) succeeded, want error", i, b)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Bool(true), "true"},
		{Int(-3), "-3"},
		{Bit(10), "10"},
		{String("a\"b"), `"a\"b"`},
		{Tuple(Int(1), String("x")), `(1, "x")`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
