package value

import (
	"fmt"
	"strings"
)

// TypeKind classifies a Type.
type TypeKind uint8

// The type kinds of the dialect's type system.
const (
	TInvalid TypeKind = iota
	TBool
	TInt    // signed 64-bit integer
	TBit    // bit<N>, unsigned, 1 <= N <= 64
	TString // UTF-8 string
	TStruct // named struct with ordered, named fields
	TTuple  // anonymous tuple
)

// Field is one named, typed component of a struct type (or an unnamed one
// of a tuple type).
type Field struct {
	Name string
	Type *Type
}

// Type describes a value's static type. Types are immutable after
// construction; share them freely.
type Type struct {
	Kind   TypeKind
	Width  int     // TBit: number of bits
	Name   string  // TStruct: declared name
	Fields []Field // TStruct, TTuple
}

// Predeclared singleton types.
var (
	BoolType   = &Type{Kind: TBool}
	IntType    = &Type{Kind: TInt}
	StringType = &Type{Kind: TString}
)

// BitType returns the type bit<width>. Width must be in 1..64.
func BitType(width int) *Type {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("value: bit width %d out of range 1..64", width))
	}
	return &Type{Kind: TBit, Width: width}
}

// StructType constructs a named struct type.
func StructType(name string, fields ...Field) *Type {
	return &Type{Kind: TStruct, Name: name, Fields: fields}
}

// TupleType constructs an anonymous tuple type.
func TupleType(elems ...*Type) *Type {
	fields := make([]Field, len(elems))
	for i, e := range elems {
		fields[i] = Field{Type: e}
	}
	return &Type{Kind: TTuple, Fields: fields}
}

// FieldIndex returns the index of the named field of a struct type, or -1.
func (t *Type) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Equal reports structural type equality. Struct types additionally compare
// by name, so two distinct declarations never unify.
func (t *Type) Equal(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case TBit:
		return t.Width == u.Width
	case TStruct:
		if t.Name != u.Name || len(t.Fields) != len(u.Fields) {
			return false
		}
		for i := range t.Fields {
			if t.Fields[i].Name != u.Fields[i].Name || !t.Fields[i].Type.Equal(u.Fields[i].Type) {
				return false
			}
		}
		return true
	case TTuple:
		if len(t.Fields) != len(u.Fields) {
			return false
		}
		for i := range t.Fields {
			if !t.Fields[i].Type.Equal(u.Fields[i].Type) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// IsNumeric reports whether values of the type support arithmetic.
func (t *Type) IsNumeric() bool { return t != nil && (t.Kind == TInt || t.Kind == TBit) }

// String renders the type in source syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TBool:
		return "bool"
	case TInt:
		return "int"
	case TBit:
		return fmt.Sprintf("bit<%d>", t.Width)
	case TString:
		return "string"
	case TStruct:
		return t.Name
	case TTuple:
		var sb strings.Builder
		sb.WriteByte('(')
		for i, f := range t.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Type.String())
		}
		sb.WriteByte(')')
		return sb.String()
	default:
		return "<invalid>"
	}
}

// ZeroValue returns the zero value of the type: false, 0, "", or a tuple of
// zero values.
func (t *Type) ZeroValue() Value {
	switch t.Kind {
	case TBool:
		return Bool(false)
	case TInt:
		return Int(0)
	case TBit:
		return Bit(0)
	case TString:
		return String("")
	case TStruct, TTuple:
		fields := make([]Value, len(t.Fields))
		for i, f := range t.Fields {
			fields[i] = f.Type.ZeroValue()
		}
		return Tuple(fields...)
	default:
		panic("value: zero of invalid type")
	}
}

// CheckValue reports whether v is a well-formed value of type t (including
// bit-width range and struct shape).
func (t *Type) CheckValue(v Value) error {
	switch t.Kind {
	case TBool:
		if v.Kind() != KindBool {
			return typeErr(t, v)
		}
	case TInt:
		if v.Kind() != KindInt {
			return typeErr(t, v)
		}
	case TBit:
		if v.Kind() != KindBit {
			return typeErr(t, v)
		}
		if MaskBits(v.Bit(), t.Width) != v.Bit() {
			return fmt.Errorf("value %d overflows %s", v.Bit(), t)
		}
	case TString:
		if v.Kind() != KindString {
			return typeErr(t, v)
		}
	case TStruct, TTuple:
		if v.Kind() != KindTuple || v.NumFields() != len(t.Fields) {
			return typeErr(t, v)
		}
		for i, f := range t.Fields {
			if err := f.Type.CheckValue(v.Field(i)); err != nil {
				return fmt.Errorf("field %d: %w", i, err)
			}
		}
	default:
		return fmt.Errorf("invalid type")
	}
	return nil
}

func typeErr(t *Type, v Value) error {
	return fmt.Errorf("value %s is not of type %s", v, t)
}
