// Package value defines the runtime values and types shared by every plane
// of the stack: the Datalog control-plane engine computes over them, the
// management plane's rows convert to and from them, and the data plane's
// match fields and action parameters are checked against them.
//
// Values are small immutable tagged unions. Records (fixed-width slices of
// values) are the tuples stored in relations. A canonical byte encoding
// provides map keys, hashing, and a deterministic total order.
package value

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the runtime representation of a Value.
type Kind uint8

// The value kinds.
const (
	KindInvalid Kind = iota
	KindBool
	KindInt    // signed, 64-bit
	KindBit    // unsigned, up to 64 bits wide (width tracked by the type)
	KindString // immutable UTF-8 string
	KindTuple  // struct or tuple: ordered fields
)

func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindBit:
		return "bit"
	case KindString:
		return "string"
	case KindTuple:
		return "tuple"
	default:
		return "invalid"
	}
}

// Value is an immutable runtime value. The zero Value is invalid.
type Value struct {
	kind Kind
	num  uint64
	str  string
	tup  []Value
}

// Bool returns a boolean value.
func Bool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Int returns a signed 64-bit integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// Bit returns an unsigned bit-vector value. The caller is responsible for
// masking to the declared width; BitW does it for you.
func Bit(v uint64) Value { return Value{kind: KindBit, num: v} }

// BitW returns an unsigned bit-vector value masked to width bits (1..64).
func BitW(v uint64, width int) Value { return Value{kind: KindBit, num: MaskBits(v, width)} }

// MaskBits truncates v to its low width bits (width 1..64).
func MaskBits(v uint64, width int) uint64 {
	if width <= 0 {
		return 0
	}
	if width >= 64 {
		return v
	}
	return v & (1<<uint(width) - 1)
}

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Tuple returns a tuple (or struct) value over the given fields. The slice
// is owned by the new value and must not be mutated afterwards.
func Tuple(fields ...Value) Value { return Value{kind: KindTuple, tup: fields} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value has been initialized.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// Bool returns the boolean payload; it panics on other kinds.
func (v Value) Bool() bool {
	v.check(KindBool)
	return v.num != 0
}

// Int returns the signed integer payload; it panics on other kinds.
func (v Value) Int() int64 {
	v.check(KindInt)
	return int64(v.num)
}

// Bit returns the unsigned bit-vector payload; it panics on other kinds.
func (v Value) Bit() uint64 {
	v.check(KindBit)
	return v.num
}

// Uint64 returns the numeric payload of an Int or Bit value as a uint64.
func (v Value) Uint64() uint64 {
	if v.kind != KindInt && v.kind != KindBit {
		panic(fmt.Sprintf("value: Uint64 on %s", v.kind))
	}
	return v.num
}

// Str returns the string payload; it panics on other kinds.
func (v Value) Str() string {
	v.check(KindString)
	return v.str
}

// Tuple returns the field slice of a tuple value; callers must not mutate it.
func (v Value) Tuple() []Value {
	v.check(KindTuple)
	return v.tup
}

// Field returns field i of a tuple value.
func (v Value) Field(i int) Value {
	v.check(KindTuple)
	return v.tup[i]
}

// NumFields returns the number of fields of a tuple value.
func (v Value) NumFields() int {
	v.check(KindTuple)
	return len(v.tup)
}

func (v Value) check(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("value: %s access on %s value", k, v.kind))
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindBool, KindInt, KindBit:
		return v.num == w.num
	case KindString:
		return v.str == w.str
	case KindTuple:
		if len(v.tup) != len(w.tup) {
			return false
		}
		for i := range v.tup {
			if !v.tup[i].Equal(w.tup[i]) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// Compare returns -1, 0, or +1 establishing a deterministic total order.
// Values of different kinds order by kind.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindBool, KindBit:
		return cmpU64(v.num, w.num)
	case KindInt:
		a, b := int64(v.num), int64(w.num)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(v.str, w.str)
	case KindTuple:
		n := len(v.tup)
		if len(w.tup) < n {
			n = len(w.tup)
		}
		for i := 0; i < n; i++ {
			if c := v.tup[i].Compare(w.tup[i]); c != 0 {
				return c
			}
		}
		return cmpU64(uint64(len(v.tup)), uint64(len(w.tup)))
	default:
		return 0
	}
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Encode appends a canonical byte encoding of v to dst and returns the
// extended slice. The encoding is injective: distinct values have distinct
// encodings, so it can serve as a map key.
func (v Value) Encode(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindBool, KindInt, KindBit:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v.num)
		dst = append(dst, b[:]...)
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.str)))
		dst = append(dst, v.str...)
	case KindTuple:
		dst = binary.AppendUvarint(dst, uint64(len(v.tup)))
		for _, f := range v.tup {
			dst = f.Encode(dst)
		}
	}
	return dst
}

// DecodeValue decodes one value from b, returning the value and the rest of
// the buffer.
func DecodeValue(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, fmt.Errorf("value: decode: empty buffer")
	}
	k := Kind(b[0])
	b = b[1:]
	switch k {
	case KindBool, KindInt, KindBit:
		if len(b) < 8 {
			return Value{}, nil, fmt.Errorf("value: decode: short numeric payload")
		}
		n := binary.BigEndian.Uint64(b[:8])
		if k == KindBool && n > 1 {
			return Value{}, nil, fmt.Errorf("value: decode: bad bool payload %d", n)
		}
		return Value{kind: k, num: n}, b[8:], nil
	case KindString:
		n, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < n {
			return Value{}, nil, fmt.Errorf("value: decode: bad string length")
		}
		b = b[sz:]
		return String(string(b[:n])), b[n:], nil
	case KindTuple:
		n, sz := binary.Uvarint(b)
		if sz <= 0 || n > uint64(len(b)) {
			return Value{}, nil, fmt.Errorf("value: decode: bad tuple arity")
		}
		b = b[sz:]
		fields := make([]Value, n)
		var err error
		for i := range fields {
			fields[i], b, err = DecodeValue(b)
			if err != nil {
				return Value{}, nil, err
			}
		}
		return Tuple(fields...), b, nil
	default:
		return Value{}, nil, fmt.Errorf("value: decode: unknown kind %d", k)
	}
}

// Hash returns a 64-bit FNV-1a hash of the value's canonical encoding.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	var buf [64]byte
	enc := v.Encode(buf[:0])
	for _, c := range enc {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// String renders the value in the Datalog dialect's literal syntax.
func (v Value) String() string {
	var sb strings.Builder
	v.format(&sb)
	return sb.String()
}

func (v Value) format(sb *strings.Builder) {
	switch v.kind {
	case KindBool:
		if v.num != 0 {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case KindInt:
		sb.WriteString(strconv.FormatInt(int64(v.num), 10))
	case KindBit:
		sb.WriteString(strconv.FormatUint(v.num, 10))
	case KindString:
		sb.WriteString(strconv.Quote(v.str))
	case KindTuple:
		sb.WriteByte('(')
		for i, f := range v.tup {
			if i > 0 {
				sb.WriteString(", ")
			}
			f.format(sb)
		}
		sb.WriteByte(')')
	default:
		sb.WriteString("<invalid>")
	}
}

// MaxInt64 is the largest signed value representable in an Int.
const MaxInt64 = math.MaxInt64
