// Package lexer tokenizes Datalog dialect source text.
package lexer

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/dl/ast"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Number // integer literal, value in Token.Num
	Str    // string literal, unquoted value in Token.Text

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	Comma
	Dot
	Colon
	Semi
	ColonDash // :-
	Assign    // =
	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Shl // <<
	Shr // >>
	Eq  // ==
	Ne  // !=
	Lt
	Le
	Gt
	Ge
	Concat // ++

	// Keywords.
	KwInput
	KwOutput
	KwRelation
	KwTypedef
	KwVar
	KwNot
	KwAnd
	KwOr
	KwTrue
	KwFalse
	KwIf
	KwElse
	KwAs
	KwGroupBy
	KwFunction
	KwBit
	KwBool
	KwInt
	KwString
	Wildcard // _
)

var kindNames = map[Kind]string{
	EOF: "end of input", Ident: "identifier", Number: "number", Str: "string",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", Comma: ",", Dot: ".",
	Colon: ":", Semi: ";", ColonDash: ":-", Assign: "=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Shl: "<<", Shr: ">>",
	Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Concat: "++",
	KwInput: "input", KwOutput: "output", KwRelation: "relation",
	KwTypedef: "typedef", KwVar: "var", KwNot: "not", KwAnd: "and", KwOr: "or",
	KwTrue: "true", KwFalse: "false", KwIf: "if", KwElse: "else", KwAs: "as",
	KwGroupBy: "group_by", KwFunction: "function", KwBit: "bit", KwBool: "bool", KwInt: "int",
	KwString: "string", Wildcard: "_",
}

func (k Kind) String() string { return kindNames[k] }

var keywords = map[string]Kind{
	"input": KwInput, "output": KwOutput, "relation": KwRelation,
	"typedef": KwTypedef, "var": KwVar, "not": KwNot, "and": KwAnd,
	"or": KwOr, "true": KwTrue, "false": KwFalse, "if": KwIf, "else": KwElse,
	"as": KwAs, "group_by": KwGroupBy, "function": KwFunction,
	"bit": KwBit, "bool": KwBool,
	"int": KwInt, "string": KwString, "_": Wildcard,
}

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // Ident name or unquoted Str contents
	Num  uint64 // Number value
	Pos  ast.Pos
}

func (t Token) String() string {
	switch t.Kind {
	case Ident:
		return t.Text
	case Number:
		return strconv.FormatUint(t.Num, 10)
	case Str:
		return strconv.Quote(t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a lexical error with position.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer produces tokens from source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

// Lex tokenizes the whole input, returning the token stream terminated by
// an EOF token.
func Lex(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == EOF {
			return out, nil
		}
	}
}

func (lx *Lexer) pos() ast.Pos { return ast.Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(i int) byte {
	if lx.off+i >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+i]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) errorf(pos ast.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return lx.errorf(start, "unterminated block comment")
				}
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		return lx.lexIdent(pos), nil
	case c >= '0' && c <= '9':
		return lx.lexNumber(pos)
	case c == '"':
		return lx.lexString(pos)
	}
	lx.advance()
	two := func(next byte, k2, k1 Kind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: k2, Pos: pos}
		}
		return Token{Kind: k1, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case '.':
		return Token{Kind: Dot, Pos: pos}, nil
	case ';':
		return Token{Kind: Semi, Pos: pos}, nil
	case ':':
		return two('-', ColonDash, Colon), nil
	case '=':
		return two('=', Eq, Assign), nil
	case '+':
		return two('+', Concat, Plus), nil
	case '-':
		return Token{Kind: Minus, Pos: pos}, nil
	case '*':
		return Token{Kind: Star, Pos: pos}, nil
	case '/':
		return Token{Kind: Slash, Pos: pos}, nil
	case '%':
		return Token{Kind: Percent, Pos: pos}, nil
	case '&':
		return Token{Kind: Amp, Pos: pos}, nil
	case '|':
		return Token{Kind: Pipe, Pos: pos}, nil
	case '^':
		return Token{Kind: Caret, Pos: pos}, nil
	case '~':
		return Token{Kind: Tilde, Pos: pos}, nil
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return Token{Kind: Shl, Pos: pos}, nil
		}
		return two('=', Le, Lt), nil
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: Shr, Pos: pos}, nil
		}
		return two('=', Ge, Gt), nil
	case '!':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: Ne, Pos: pos}, nil
		}
		return Token{}, lx.errorf(pos, "unexpected character %q", '!')
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.off-1:])
	return Token{}, lx.errorf(pos, "unexpected character %q", r)
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func (lx *Lexer) lexIdent(pos ast.Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if k, ok := keywords[text]; ok {
		return Token{Kind: k, Text: text, Pos: pos}
	}
	return Token{Kind: Ident, Text: text, Pos: pos}
}

func (lx *Lexer) lexNumber(pos ast.Pos) (Token, error) {
	start := lx.off
	base := 10
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		base = 16
		lx.advance()
		lx.advance()
	} else if lx.peek() == '0' && (lx.peekAt(1) == 'b' || lx.peekAt(1) == 'B') {
		base = 2
		lx.advance()
		lx.advance()
	}
	digits := lx.off
	for lx.off < len(lx.src) {
		c := lx.peek()
		if c == '_' || c >= '0' && c <= '9' ||
			base == 16 && (c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			lx.advance()
			continue
		}
		break
	}
	text := strings.ReplaceAll(lx.src[digits:lx.off], "_", "")
	if text == "" {
		return Token{}, lx.errorf(pos, "malformed number %q", lx.src[start:lx.off])
	}
	n, err := strconv.ParseUint(text, base, 64)
	if err != nil {
		return Token{}, lx.errorf(pos, "malformed number %q: %v", lx.src[start:lx.off], err)
	}
	// Reject an identifier character glued to the number (e.g. 12ab in base 10).
	if lx.off < len(lx.src) && isIdentStart(lx.peek()) {
		return Token{}, lx.errorf(pos, "malformed number: unexpected %q", rune(lx.peek()))
	}
	return Token{Kind: Number, Num: n, Pos: pos}, nil
}

func (lx *Lexer) lexString(pos ast.Pos) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, lx.errorf(pos, "unterminated string literal")
		}
		c := lx.advance()
		switch c {
		case '"':
			return Token{Kind: Str, Text: sb.String(), Pos: pos}, nil
		case '\\':
			if lx.off >= len(lx.src) {
				return Token{}, lx.errorf(pos, "unterminated string literal")
			}
			e := lx.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case '0':
				sb.WriteByte(0)
			default:
				return Token{}, lx.errorf(pos, "unknown escape \\%c", e)
			}
		case '\n':
			return Token{}, lx.errorf(pos, "newline in string literal")
		default:
			sb.WriteByte(c)
		}
	}
}

// IsUpperIdent reports whether name starts with an upper-case letter
// (relation and type names do; variables are lower-case by convention).
func IsUpperIdent(name string) bool {
	r, _ := utf8.DecodeRuneInString(name)
	return unicode.IsUpper(r)
}
