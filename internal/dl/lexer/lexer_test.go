package lexer

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	out := make([]Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := kinds(t, `InVlan(p, v) :- Port(p, v, false).`)
	want := []Kind{Ident, LParen, Ident, Comma, Ident, RParen, ColonDash,
		Ident, LParen, Ident, Comma, Ident, Comma, KwFalse, RParen, Dot, EOF}
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	src := `:- = == != < <= > >= << >> + ++ - * / % & | ^ ~ _`
	want := []Kind{ColonDash, Assign, Eq, Ne, Lt, Le, Gt, Ge, Shl, Shr,
		Plus, Concat, Minus, Star, Slash, Percent, Amp, Pipe, Caret, Tilde, Wildcard, EOF}
	got := kinds(t, src)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Lex("42 0x2a 0b101010 1_000")
	if err != nil {
		t.Fatal(err)
	}
	wantVals := []uint64{42, 42, 42, 1000}
	for i, w := range wantVals {
		if toks[i].Kind != Number || toks[i].Num != w {
			t.Errorf("token %d = %v (num %d), want %d", i, toks[i], toks[i].Num, w)
		}
	}
}

func TestStrings(t *testing.T) {
	toks, err := Lex(`"hello\n\"there\"" "tab\t"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "hello\n\"there\"" {
		t.Errorf("string 0 = %q", toks[0].Text)
	}
	if toks[1].Text != "tab\t" {
		t.Errorf("string 1 = %q", toks[1].Text)
	}
}

func TestComments(t *testing.T) {
	src := `a // line comment
	/* block
	   comment */ b`
	got := kinds(t, src)
	want := []Kind{Ident, Ident, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Lex("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("token a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("token bb at %v", toks[1].Pos)
	}
}

func TestKeywords(t *testing.T) {
	src := "input output relation typedef var not and or true false if else as group_by bit bool int string"
	want := []Kind{KwInput, KwOutput, KwRelation, KwTypedef, KwVar, KwNot,
		KwAnd, KwOr, KwTrue, KwFalse, KwIf, KwElse, KwAs, KwGroupBy, KwBit,
		KwBool, KwInt, KwString, EOF}
	got := kinds(t, src)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		`"unterminated`,
		`"newline
		"`,
		`"bad \q escape"`,
		`12abc`,
		`0x`,
		`!x`,
		`@`,
		`/* unterminated`,
	}
	for _, src := range bad {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("error lacks position: %v", err)
		}
	}
}

func TestIsUpperIdent(t *testing.T) {
	if !IsUpperIdent("Port") || IsUpperIdent("port") || IsUpperIdent("_x") {
		t.Errorf("IsUpperIdent misclassifies")
	}
}
