// Package typecheck resolves and checks a parsed Datalog program, producing
// a typed intermediate representation that the incremental engine compiles
// into dataflow. All cross-plane type checking (management-plane schemas and
// data-plane pipelines against control-plane relations) bottoms out in the
// types defined here.
package typecheck

import (
	"fmt"
	"strings"

	"repro/internal/dl/value"
)

// Expr is a typed, evaluable expression. Variables are resolved to slots in
// a per-rule environment.
type Expr interface {
	Type() *value.Type
	// Eval evaluates the expression in env. It returns an error only for
	// runtime faults (division by zero); type errors are impossible after
	// checking.
	Eval(env []value.Value) (value.Value, error)
}

// Const is a literal value.
type Const struct {
	V value.Value
	T *value.Type
}

// Type returns the expression's static type.
func (c *Const) Type() *value.Type { return c.T }

// Eval returns the constant.
func (c *Const) Eval([]value.Value) (value.Value, error) { return c.V, nil }

// VarRef reads a bound variable from its environment slot.
type VarRef struct {
	Slot int
	Name string
	T    *value.Type
}

// Type returns the expression's static type.
func (v *VarRef) Type() *value.Type { return v.T }

// Eval returns the slot's value.
func (v *VarRef) Eval(env []value.Value) (value.Value, error) { return env[v.Slot], nil }

// BinOpKind is a typed binary operation.
type BinOpKind int

// Typed binary operations. Comparison operators are folded into Cmp.
const (
	BinAddInt BinOpKind = iota
	BinSubInt
	BinMulInt
	BinDivInt
	BinModInt
	BinAddBit
	BinSubBit
	BinMulBit
	BinDivBit
	BinModBit
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
	BinConcat
	BinLogAnd
	BinLogOr
)

// BinOp is a typed binary operation over already-checked operands.
type BinOp struct {
	Kind  BinOpKind
	L, R  Expr
	Width int // TBit result width for masking
	T     *value.Type
}

// Type returns the expression's static type.
func (b *BinOp) Type() *value.Type { return b.T }

// Eval evaluates the operation.
func (b *BinOp) Eval(env []value.Value) (value.Value, error) {
	// Short-circuit logical operators first.
	switch b.Kind {
	case BinLogAnd:
		l, err := b.L.Eval(env)
		if err != nil {
			return value.Value{}, err
		}
		if !l.Bool() {
			return value.Bool(false), nil
		}
		return b.R.Eval(env)
	case BinLogOr:
		l, err := b.L.Eval(env)
		if err != nil {
			return value.Value{}, err
		}
		if l.Bool() {
			return value.Bool(true), nil
		}
		return b.R.Eval(env)
	}
	l, err := b.L.Eval(env)
	if err != nil {
		return value.Value{}, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return value.Value{}, err
	}
	switch b.Kind {
	case BinAddInt:
		return value.Int(l.Int() + r.Int()), nil
	case BinSubInt:
		return value.Int(l.Int() - r.Int()), nil
	case BinMulInt:
		return value.Int(l.Int() * r.Int()), nil
	case BinDivInt:
		if r.Int() == 0 {
			return value.Value{}, fmt.Errorf("division by zero")
		}
		if l.Int() == -1<<63 && r.Int() == -1 {
			return value.Int(-1 << 63), nil // wraparound, match hardware
		}
		return value.Int(l.Int() / r.Int()), nil
	case BinModInt:
		if r.Int() == 0 {
			return value.Value{}, fmt.Errorf("modulo by zero")
		}
		if l.Int() == -1<<63 && r.Int() == -1 {
			return value.Int(0), nil
		}
		return value.Int(l.Int() % r.Int()), nil
	case BinAddBit:
		return value.BitW(l.Bit()+r.Bit(), b.Width), nil
	case BinSubBit:
		return value.BitW(l.Bit()-r.Bit(), b.Width), nil
	case BinMulBit:
		return value.BitW(l.Bit()*r.Bit(), b.Width), nil
	case BinDivBit:
		if r.Bit() == 0 {
			return value.Value{}, fmt.Errorf("division by zero")
		}
		return value.BitW(l.Bit()/r.Bit(), b.Width), nil
	case BinModBit:
		if r.Bit() == 0 {
			return value.Value{}, fmt.Errorf("modulo by zero")
		}
		return value.BitW(l.Bit()%r.Bit(), b.Width), nil
	case BinAnd:
		return numish(l.Uint64()&r.Uint64(), b.T), nil
	case BinOr:
		return numish(l.Uint64()|r.Uint64(), b.T), nil
	case BinXor:
		return numish(l.Uint64()^r.Uint64(), b.T), nil
	case BinShl:
		sh := r.Uint64()
		if sh >= 64 {
			return numish(0, b.T), nil
		}
		if b.T.Kind == value.TBit {
			return value.BitW(l.Bit()<<sh, b.Width), nil
		}
		return value.Int(l.Int() << sh), nil
	case BinShr:
		sh := r.Uint64()
		if b.T.Kind == value.TBit {
			if sh >= 64 {
				return value.Bit(0), nil
			}
			return value.Bit(l.Bit() >> sh), nil
		}
		if sh >= 64 {
			sh = 63
		}
		return value.Int(l.Int() >> sh), nil
	case BinConcat:
		return value.String(l.Str() + r.Str()), nil
	default:
		panic("typecheck: bad binop kind")
	}
}

func numish(v uint64, t *value.Type) value.Value {
	if t.Kind == value.TBit {
		return value.BitW(v, t.Width)
	}
	return value.Int(int64(v))
}

// Cmp compares two operands of the same type. Op is one of "==", "!=", "<",
// "<=", ">", ">=".
type Cmp struct {
	Op   string
	L, R Expr
}

// Type returns bool.
func (c *Cmp) Type() *value.Type { return value.BoolType }

// Eval evaluates the comparison.
func (c *Cmp) Eval(env []value.Value) (value.Value, error) {
	l, err := c.L.Eval(env)
	if err != nil {
		return value.Value{}, err
	}
	r, err := c.R.Eval(env)
	if err != nil {
		return value.Value{}, err
	}
	var res bool
	switch c.Op {
	case "==":
		res = l.Equal(r)
	case "!=":
		res = !l.Equal(r)
	default:
		cv := l.Compare(r)
		// Int comparison must be signed; Compare on KindInt already is.
		switch c.Op {
		case "<":
			res = cv < 0
		case "<=":
			res = cv <= 0
		case ">":
			res = cv > 0
		case ">=":
			res = cv >= 0
		}
	}
	return value.Bool(res), nil
}

// UnOp is a typed unary operation.
type UnOp struct {
	Op    string // "not", "-", "~"
	E     Expr
	Width int
	T     *value.Type
}

// Type returns the expression's static type.
func (u *UnOp) Type() *value.Type { return u.T }

// Eval evaluates the operation.
func (u *UnOp) Eval(env []value.Value) (value.Value, error) {
	v, err := u.E.Eval(env)
	if err != nil {
		return value.Value{}, err
	}
	switch u.Op {
	case "not":
		return value.Bool(!v.Bool()), nil
	case "-":
		return value.Int(-v.Int()), nil
	case "~":
		if u.T.Kind == value.TBit {
			return value.BitW(^v.Bit(), u.Width), nil
		}
		return value.Int(^v.Int()), nil
	default:
		panic("typecheck: bad unop")
	}
}

// FieldGet extracts a struct or tuple field by index.
type FieldGet struct {
	E     Expr
	Index int
	T     *value.Type
}

// Type returns the expression's static type.
func (f *FieldGet) Type() *value.Type { return f.T }

// Eval evaluates the field access.
func (f *FieldGet) Eval(env []value.Value) (value.Value, error) {
	v, err := f.E.Eval(env)
	if err != nil {
		return value.Value{}, err
	}
	return v.Field(f.Index), nil
}

// MkTuple builds a tuple or struct value.
type MkTuple struct {
	Elems []Expr
	T     *value.Type
}

// Type returns the expression's static type.
func (m *MkTuple) Type() *value.Type { return m.T }

// Eval evaluates all fields and builds the tuple.
func (m *MkTuple) Eval(env []value.Value) (value.Value, error) {
	fields := make([]value.Value, len(m.Elems))
	for i, e := range m.Elems {
		v, err := e.Eval(env)
		if err != nil {
			return value.Value{}, err
		}
		fields[i] = v
	}
	return value.Tuple(fields...), nil
}

// CastOp converts between numeric types.
type CastOp struct {
	E Expr
	T *value.Type
}

// Type returns the target type.
func (c *CastOp) Type() *value.Type { return c.T }

// Eval evaluates the conversion.
func (c *CastOp) Eval(env []value.Value) (value.Value, error) {
	v, err := c.E.Eval(env)
	if err != nil {
		return value.Value{}, err
	}
	if c.T.Kind == value.TBit {
		return value.BitW(v.Uint64(), c.T.Width), nil
	}
	return value.Int(int64(v.Uint64())), nil
}

// IfOp is a conditional expression.
type IfOp struct {
	Cond, Then, Else Expr
	T                *value.Type
}

// Type returns the expression's static type.
func (i *IfOp) Type() *value.Type { return i.T }

// Eval evaluates the selected branch only.
func (i *IfOp) Eval(env []value.Value) (value.Value, error) {
	c, err := i.Cond.Eval(env)
	if err != nil {
		return value.Value{}, err
	}
	if c.Bool() {
		return i.Then.Eval(env)
	}
	return i.Else.Eval(env)
}

// CallOp applies a builtin function.
type CallOp struct {
	Name string
	Args []Expr
	T    *value.Type
}

// Type returns the expression's static type.
func (c *CallOp) Type() *value.Type { return c.T }

// Eval evaluates the builtin.
func (c *CallOp) Eval(env []value.Value) (value.Value, error) {
	args := make([]value.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(env)
		if err != nil {
			return value.Value{}, err
		}
		args[i] = v
	}
	switch c.Name {
	case "hash64":
		return value.Bit(args[0].Hash()), nil
	case "len":
		return value.Int(int64(len(args[0].Str()))), nil
	case "to_string":
		if args[0].Kind() == value.KindString {
			return args[0], nil
		}
		return value.String(args[0].String()), nil
	case "substr":
		s := args[0].Str()
		from, to := clampIdx(args[1].Int(), len(s)), clampIdx(args[2].Int(), len(s))
		if from > to {
			from = to
		}
		return value.String(s[from:to]), nil
	case "string_contains":
		return value.Bool(strings.Contains(args[0].Str(), args[1].Str())), nil
	case "string_starts_with":
		return value.Bool(strings.HasPrefix(args[0].Str(), args[1].Str())), nil
	case "min":
		if args[0].Compare(args[1]) <= 0 {
			return args[0], nil
		}
		return args[1], nil
	case "max":
		if args[0].Compare(args[1]) >= 0 {
			return args[0], nil
		}
		return args[1], nil
	case "abs":
		n := args[0].Int()
		if n < 0 {
			n = -n
		}
		return value.Int(n), nil
	default:
		panic("typecheck: unknown builtin " + c.Name)
	}
}

func clampIdx(i int64, n int) int {
	if i < 0 {
		return 0
	}
	if i > int64(n) {
		return n
	}
	return int(i)
}

// FuncCall applies a user-defined function. The arguments are evaluated
// into a fresh environment; the body's variable references are the
// function's parameter slots.
type FuncCall struct {
	Name string
	Args []Expr
	Body Expr
	T    *value.Type
}

// Type returns the function's declared return type.
func (f *FuncCall) Type() *value.Type { return f.T }

// Eval evaluates the arguments and then the body.
func (f *FuncCall) Eval(env []value.Value) (value.Value, error) {
	inner := make([]value.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(env)
		if err != nil {
			return value.Value{}, err
		}
		inner[i] = v
	}
	return f.Body.Eval(inner)
}
