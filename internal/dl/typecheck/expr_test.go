package typecheck

import (
	"strings"
	"testing"

	"repro/internal/dl/ast"
	"repro/internal/dl/parser"
	"repro/internal/dl/value"
)

// evalExpr compiles a one-rule program whose head is the expression under
// test over typed inputs, then evaluates it with the given environment.
//
// The program shape is:
//
//	input relation In(a: T1, b: T2, ...)
//	output relation O(r: RT)
//	O(<expr>) :- In(a, b, ...).
func evalExpr(t *testing.T, inCols, outCol, expr string, env []value.Value) (value.Value, error) {
	t.Helper()
	src := "input relation In(" + inCols + ")\n" +
		"output relation O(r: " + outCol + ")\n" +
		"O(" + expr + ") :- In(" + varsOf(inCols) + ").\n"
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	prog, err := Check(tree)
	if err != nil {
		t.Fatalf("check: %v\n%s", err, src)
	}
	return prog.Rules[0].HeadExprs[0].Eval(env)
}

// varsOf extracts the parameter names of "a: T, b: T".
func varsOf(cols string) string {
	var names []string
	for _, part := range strings.Split(cols, ",") {
		names = append(names, strings.TrimSpace(strings.Split(part, ":")[0]))
	}
	return strings.Join(names, ", ")
}

func TestEvalIntArithmetic(t *testing.T) {
	env := []value.Value{value.Int(7), value.Int(3)}
	cases := map[string]int64{
		"a + b": 10, "a - b": 4, "a * b": 21, "a / b": 2, "a % b": 1,
		"a & b": 3, "a | b": 7, "a ^ b": 4,
		"a << 2": 28, "a >> 1": 3,
		"-a": -7, "~a": -8,
		"min(a, b)": 3, "max(a, b)": 7, "abs(0 - a)": 7,
		"if (a > b) a else b": 7,
	}
	for expr, want := range cases {
		got, err := evalExpr(t, "a: int, b: int", "int", expr, env)
		if err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		if got.Int() != want {
			t.Errorf("%s = %d, want %d", expr, got.Int(), want)
		}
	}
}

func TestEvalIntOverflowSemantics(t *testing.T) {
	// Wrapping and the INT64_MIN edge cases.
	minInt := value.Int(-1 << 63)
	env := []value.Value{minInt, value.Int(-1)}
	got, err := evalExpr(t, "a: int, b: int", "int", "a / b", env)
	if err != nil || got.Int() != -1<<63 {
		t.Errorf("INT64_MIN / -1 = %v, %v (want wraparound)", got, err)
	}
	got, err = evalExpr(t, "a: int, b: int", "int", "a % b", env)
	if err != nil || got.Int() != 0 {
		t.Errorf("INT64_MIN %% -1 = %v, %v", got, err)
	}
	// Negative shift amounts cannot be expressed; oversized shifts clamp.
	got, err = evalExpr(t, "a: int, b: int", "int", "a >> 100",
		[]value.Value{value.Int(-8), value.Int(0)})
	if err != nil || got.Int() != -1 {
		t.Errorf("-8 >> 100 = %v, %v (arithmetic shift saturates)", got, err)
	}
	got, err = evalExpr(t, "a: int, b: int", "int", "a << 100",
		[]value.Value{value.Int(5), value.Int(0)})
	if err != nil || got.Int() != 0 {
		t.Errorf("5 << 100 = %v, %v", got, err)
	}
}

func TestEvalBitArithmetic(t *testing.T) {
	env := []value.Value{value.Bit(200), value.Bit(100)}
	cases := map[string]uint64{
		"a + b":    (200 + 100) % 256,
		"a - b":    100,
		"b - a":    (100 - 200 + 256) % 256,
		"a * b":    (200 * 100) % 256,
		"a / b":    2,
		"a % b":    0,
		"a & b":    200 & 100,
		"a | b":    200 | 100,
		"a ^ b":    200 ^ 100,
		"~a":       ^uint64(200) & 0xff,
		"a << 1":   (200 << 1) % 256,
		"a >> 3":   200 >> 3,
		"a >> 100": 0,
		"a << 100": 0,
	}
	for expr, want := range cases {
		got, err := evalExpr(t, "a: bit<8>, b: bit<8>", "bit<8>", expr, env)
		if err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		if got.Bit() != want {
			t.Errorf("%s = %d, want %d", expr, got.Bit(), want)
		}
	}
}

func TestEvalDivModByZero(t *testing.T) {
	for _, tc := range []struct{ cols, out, expr string }{
		{"a: int, b: int", "int", "a / b"},
		{"a: int, b: int", "int", "a % b"},
		{"a: bit<8>, b: bit<8>", "bit<8>", "a / b"},
		{"a: bit<8>, b: bit<8>", "bit<8>", "a % b"},
	} {
		var env []value.Value
		if strings.Contains(tc.cols, "bit") {
			env = []value.Value{value.Bit(5), value.Bit(0)}
		} else {
			env = []value.Value{value.Int(5), value.Int(0)}
		}
		if _, err := evalExpr(t, tc.cols, tc.out, tc.expr, env); err == nil {
			t.Errorf("%s with zero divisor succeeded", tc.expr)
		}
	}
}

func TestEvalComparisons(t *testing.T) {
	env := []value.Value{value.Int(3), value.Int(5)}
	cases := map[string]bool{
		"a == b": false, "a != b": true,
		"a < b": true, "a <= b": true, "a > b": false, "a >= b": false,
		"a < b and b < 10":        true,
		"a > b or b == 5":         true,
		"not (a == b)":            true,
		"a == 3 and not (b == 3)": true,
	}
	for expr, want := range cases {
		got, err := evalExpr(t, "a: int, b: int", "bool", expr, env)
		if err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		if got.Bool() != want {
			t.Errorf("%s = %v, want %v", expr, got.Bool(), want)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// The right side would divide by zero; short-circuiting must skip it.
	env := []value.Value{value.Int(0)}
	got, err := evalExpr(t, "a: int", "bool", "a != 0 and 10 / a > 1", env)
	if err != nil || got.Bool() {
		t.Errorf("and short-circuit: %v, %v", got, err)
	}
	got, err = evalExpr(t, "a: int", "bool", "a == 0 or 10 / a > 1", env)
	if err != nil || !got.Bool() {
		t.Errorf("or short-circuit: %v, %v", got, err)
	}
}

func TestEvalStringsAndCasts(t *testing.T) {
	got, err := evalExpr(t, "s: string", "string", `s ++ "-x"`,
		[]value.Value{value.String("ab")})
	if err != nil || got.Str() != "ab-x" {
		t.Errorf("concat: %v, %v", got, err)
	}
	got, err = evalExpr(t, "a: int", "bit<4>", "a as bit<4>",
		[]value.Value{value.Int(300)})
	if err != nil || got.Bit() != 300%16 {
		t.Errorf("int->bit cast: %v, %v", got, err)
	}
	got, err = evalExpr(t, "a: bit<8>", "int", "a as int",
		[]value.Value{value.Bit(255)})
	if err != nil || got.Int() != 255 {
		t.Errorf("bit->int cast: %v, %v", got, err)
	}
	got, err = evalExpr(t, "a: bit<16>", "bit<8>", "a as bit<8>",
		[]value.Value{value.Bit(0x1ff)})
	if err != nil || got.Bit() != 0xff {
		t.Errorf("narrowing cast: %v, %v", got, err)
	}
}

func TestEvalTupleAndStruct(t *testing.T) {
	tree, err := parser.Parse(`
		typedef Pair = Pair{x: int, y: int}
		input relation In(a: int, b: int)
		output relation O(p: Pair, t: (int, int), first: int)
		O(Pair{x = a, y = b}, (b, a), Pair{x = a, y = b}.x) :- In(a, b).
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Check(tree)
	if err != nil {
		t.Fatal(err)
	}
	env := []value.Value{value.Int(1), value.Int(2)}
	p, err := prog.Rules[0].HeadExprs[0].Eval(env)
	if err != nil || p.Field(0).Int() != 1 || p.Field(1).Int() != 2 {
		t.Errorf("struct = %v, %v", p, err)
	}
	tp, err := prog.Rules[0].HeadExprs[1].Eval(env)
	if err != nil || tp.Field(0).Int() != 2 {
		t.Errorf("tuple = %v, %v", tp, err)
	}
	f, err := prog.Rules[0].HeadExprs[2].Eval(env)
	if err != nil || f.Int() != 1 {
		t.Errorf("field access on constructed struct = %v, %v", f, err)
	}
}

func TestEvalHash64Stable(t *testing.T) {
	a, err := evalExpr(t, "s: string", "bit<64>", "hash64(s)",
		[]value.Value{value.String("x")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := evalExpr(t, "s: string", "bit<64>", "hash64(s)",
		[]value.Value{value.String("x")})
	if err != nil || a.Bit() != b.Bit() {
		t.Errorf("hash64 not deterministic: %v vs %v", a, b)
	}
	c, _ := evalExpr(t, "s: string", "bit<64>", "hash64(s)",
		[]value.Value{value.String("y")})
	if c.Bit() == a.Bit() {
		t.Errorf("hash64 collision on trivial inputs")
	}
}

func TestEvalSubstrClamps(t *testing.T) {
	cases := []struct {
		from, to int64
		want     string
	}{
		{1, 3, "el"},
		{-5, 2, "he"},
		{3, 100, "lo"},
		{4, 2, ""},
	}
	for _, c := range cases {
		got, err := evalExpr(t, "s: string, f: int, u: int", "string",
			"substr(s, f, u)",
			[]value.Value{value.String("hello"), value.Int(c.from), value.Int(c.to)})
		if err != nil || got.Str() != c.want {
			t.Errorf("substr(hello, %d, %d) = %v, %v (want %q)", c.from, c.to, got, err, c.want)
		}
	}
}

func TestEvalMinMaxStrings(t *testing.T) {
	got, err := evalExpr(t, "a: string, b: string", "string", "min(a, b)",
		[]value.Value{value.String("b"), value.String("a")})
	if err != nil || got.Str() != "a" {
		t.Errorf("min strings: %v, %v", got, err)
	}
	got, err = evalExpr(t, "a: string, b: string", "string", "max(a, b)",
		[]value.Value{value.String("b"), value.String("a")})
	if err != nil || got.Str() != "b" {
		t.Errorf("max strings: %v, %v", got, err)
	}
}

func TestEvalToString(t *testing.T) {
	cases := []struct {
		cols string
		env  []value.Value
		want string
	}{
		{"a: int", []value.Value{value.Int(-3)}, "-3"},
		{"a: bool", []value.Value{value.Bool(true)}, "true"},
		{"a: string", []value.Value{value.String("s")}, "s"},
		{"a: bit<8>", []value.Value{value.Bit(9)}, "9"},
	}
	for _, c := range cases {
		got, err := evalExpr(t, c.cols, "string", "to_string(a)", c.env)
		if err != nil || got.Str() != c.want {
			t.Errorf("to_string(%v) = %v, %v (want %q)", c.env[0], got, err, c.want)
		}
	}
}

func TestAddRelation(t *testing.T) {
	prog := &Program{
		Types:     map[string]*value.Type{},
		RelByName: map[string]*Relation{},
	}
	rel := &Relation{Name: "R", Role: ast.RoleInput,
		Cols: []Column{{Name: "x", Type: value.IntType}}}
	if err := prog.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	if prog.Relation("R") != rel || rel.Index != 0 {
		t.Errorf("AddRelation did not register")
	}
	if err := prog.AddRelation(rel); err == nil {
		t.Errorf("duplicate AddRelation succeeded")
	}
}
