package typecheck

import (
	"fmt"

	"repro/internal/dl/ast"
	"repro/internal/dl/value"
)

// Error is a semantic error with source position.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errorf(pos ast.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Column is one typed relation column.
type Column struct {
	Name string
	Type *value.Type
}

// Relation is a checked relation declaration.
type Relation struct {
	Name  string
	Role  ast.RelationRole
	Cols  []Column
	Index int // position in Program.Relations
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Cols) }

// CheckRecord verifies that rec is a well-typed tuple for this relation.
func (r *Relation) CheckRecord(rec value.Record) error {
	if len(rec) != len(r.Cols) {
		return fmt.Errorf("relation %s: record arity %d, want %d", r.Name, len(rec), len(r.Cols))
	}
	for i, c := range r.Cols {
		if err := c.Type.CheckValue(rec[i]); err != nil {
			return fmt.Errorf("relation %s, column %s: %w", r.Name, c.Name, err)
		}
	}
	return nil
}

// ColCheck pairs a column index with an expression whose value the column
// must equal.
type ColCheck struct {
	Col  int
	Expr Expr
}

// LiteralTerm is a checked (possibly negated) body literal.
type LiteralTerm struct {
	Rel     *Relation
	Negated bool
	// BindSlots[i] is the environment slot bound from column i, or -1 when
	// the column is matched by a check expression or wildcard.
	BindSlots []int
	// Checks are columns constrained to equal an expression over variables
	// bound elsewhere in the rule.
	Checks []ColCheck
	Pos    ast.Pos
}

// CondTerm is a boolean guard.
type CondTerm struct {
	Expr Expr
	Pos  ast.Pos
}

// AssignTerm binds a fresh slot to an expression value.
type AssignTerm struct {
	Slot int
	Expr Expr
	Pos  ast.Pos
}

// GroupByTerm aggregates the body's bindings grouped by key slots. It is
// always the final term of its rule.
type GroupByTerm struct {
	KeySlots []int
	Agg      string // count, sum, min, max
	Arg      Expr   // nil for count
	OutSlot  int
	OutType  *value.Type
	Pos      ast.Pos
}

// Term is a checked body term: *LiteralTerm, *CondTerm, *AssignTerm, or
// *GroupByTerm.
type Term interface{ termPos() ast.Pos }

func (t *LiteralTerm) termPos() ast.Pos { return t.Pos }
func (t *CondTerm) termPos() ast.Pos    { return t.Pos }
func (t *AssignTerm) termPos() ast.Pos  { return t.Pos }
func (t *GroupByTerm) termPos() ast.Pos { return t.Pos }

// VarInfo describes one rule variable.
type VarInfo struct {
	Name string
	Type *value.Type
}

// Rule is a checked rule.
type Rule struct {
	Head      *Relation
	HeadExprs []Expr
	Body      []Term
	// Slots describes the environment: user variables first, then hidden
	// slots introduced by planning.
	Slots []VarInfo
	Pos   ast.Pos
	// GroupBy is the trailing aggregation term, if any (also in Body).
	GroupBy *GroupByTerm
}

// NumSlots returns the environment size the rule requires.
func (r *Rule) NumSlots() int { return len(r.Slots) }

// HeadIsPattern reports whether every head argument is a plain variable
// reference or constant, which makes the head invertible (required for
// efficient delete/re-derive in recursive strata).
func (r *Rule) HeadIsPattern() bool {
	for _, e := range r.HeadExprs {
		switch e.(type) {
		case *VarRef, *Const:
		default:
			return false
		}
	}
	return true
}

// Program is a checked program: the input to the engine compiler.
type Program struct {
	Types     map[string]*value.Type
	Relations []*Relation
	RelByName map[string]*Relation
	Rules     []*Rule
}

// Relation returns the named relation, or nil.
func (p *Program) Relation(name string) *Relation { return p.RelByName[name] }

// Check resolves and type-checks a parsed program.
func Check(prog *ast.Program) (*Program, error) {
	c := &checker{
		out: &Program{
			Types:     make(map[string]*value.Type),
			RelByName: make(map[string]*Relation),
		},
		funcs: make(map[string]*funcSig),
	}
	if err := c.declareTypes(prog.Typedefs); err != nil {
		return nil, err
	}
	if err := c.declareRelations(prog.Relations); err != nil {
		return nil, err
	}
	if err := c.declareFunctions(prog.Functions); err != nil {
		return nil, err
	}
	for _, rule := range prog.Rules {
		checked, err := c.checkRule(rule)
		if err != nil {
			return nil, err
		}
		c.out.Rules = append(c.out.Rules, checked)
	}
	return c.out, nil
}

type checker struct {
	out *Program
	// resolveType resolves syntactic types; installed by declareTypes.
	resolveType resolveFunc
	funcs       map[string]*funcSig
}

// funcSig is a checked user-defined function.
type funcSig struct {
	params []*value.Type
	ret    *value.Type
	body   Expr
}

func (c *checker) declareTypes(tds []*ast.Typedef) error {
	// Two passes so struct fields may reference types declared later
	// (but not cyclically).
	seen := make(map[string]*ast.Typedef)
	for _, td := range tds {
		if _, dup := seen[td.Name]; dup {
			return errorf(td.Pos, "type %q redeclared", td.Name)
		}
		seen[td.Name] = td
	}
	state := make(map[string]int) // 0 unvisited, 1 in progress, 2 done
	var resolveName func(name string, pos ast.Pos) (*value.Type, error)
	var resolveExpr func(te ast.TypeExpr) (*value.Type, error)
	resolveName = func(name string, pos ast.Pos) (*value.Type, error) {
		if t, ok := c.out.Types[name]; ok {
			return t, nil
		}
		td, ok := seen[name]
		if !ok {
			return nil, errorf(pos, "unknown type %q", name)
		}
		if state[name] == 1 {
			return nil, errorf(pos, "type %q is recursively defined", name)
		}
		state[name] = 1
		fields := make([]value.Field, len(td.Fields))
		names := make(map[string]bool)
		for i, f := range td.Fields {
			if names[f.Name] {
				return nil, errorf(f.Pos, "duplicate field %q in type %q", f.Name, name)
			}
			names[f.Name] = true
			ft, err := resolveExpr(f.Type)
			if err != nil {
				return nil, err
			}
			fields[i] = value.Field{Name: f.Name, Type: ft}
		}
		t := value.StructType(name, fields...)
		c.out.Types[name] = t
		state[name] = 2
		return t, nil
	}
	resolveExpr = func(te ast.TypeExpr) (*value.Type, error) {
		switch te := te.(type) {
		case *ast.NamedType:
			switch te.Name {
			case "bool":
				return value.BoolType, nil
			case "int":
				return value.IntType, nil
			case "string":
				return value.StringType, nil
			default:
				return resolveName(te.Name, te.Pos)
			}
		case *ast.BitTypeExpr:
			return value.BitType(te.Width), nil
		case *ast.TupleTypeExpr:
			elems := make([]*value.Type, len(te.Elems))
			for i, e := range te.Elems {
				t, err := resolveExpr(e)
				if err != nil {
					return nil, err
				}
				elems[i] = t
			}
			return value.TupleType(elems...), nil
		default:
			return nil, errorf(te.Position(), "unsupported type expression")
		}
	}
	c.resolveType = resolveExpr
	for _, td := range tds {
		if _, err := resolveName(td.Name, td.Pos); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) declareRelations(decls []*ast.RelationDecl) error {
	for _, d := range decls {
		if _, dup := c.out.RelByName[d.Name]; dup {
			return errorf(d.Pos, "relation %q redeclared", d.Name)
		}
		rel := &Relation{Name: d.Name, Role: d.Role, Index: len(c.out.Relations)}
		names := make(map[string]bool)
		for _, p := range d.Params {
			if names[p.Name] {
				return errorf(p.Pos, "duplicate column %q in relation %q", p.Name, d.Name)
			}
			names[p.Name] = true
			t, err := c.resolveType(p.Type)
			if err != nil {
				return err
			}
			rel.Cols = append(rel.Cols, Column{Name: p.Name, Type: t})
		}
		c.out.Relations = append(c.out.Relations, rel)
		c.out.RelByName[d.Name] = rel
	}
	return nil
}

// AddRelation registers an externally-constructed relation (used by codegen
// when declarations are generated from other planes rather than parsed).
func (p *Program) AddRelation(rel *Relation) error {
	if _, dup := p.RelByName[rel.Name]; dup {
		return fmt.Errorf("relation %q redeclared", rel.Name)
	}
	rel.Index = len(p.Relations)
	p.Relations = append(p.Relations, rel)
	p.RelByName[rel.Name] = rel
	return nil
}

// resolveType is installed by declareTypes.
type resolveFunc func(te ast.TypeExpr) (*value.Type, error)

// declareFunctions checks user function declarations. Functions may call
// only previously declared functions, so bodies cannot recurse.
func (c *checker) declareFunctions(decls []*ast.FuncDecl) error {
	for _, fd := range decls {
		if _, isBuiltin := builtins[fd.Name]; isBuiltin {
			return errorf(fd.Pos, "function %q redefines a builtin", fd.Name)
		}
		if _, dup := c.funcs[fd.Name]; dup {
			return errorf(fd.Pos, "function %q redeclared", fd.Name)
		}
		scope := &ruleScope{vars: make(map[string]int)}
		sig := &funcSig{}
		names := make(map[string]bool)
		for _, p := range fd.Params {
			if names[p.Name] {
				return errorf(p.Pos, "duplicate parameter %q", p.Name)
			}
			names[p.Name] = true
			t, err := c.resolveType(p.Type)
			if err != nil {
				return err
			}
			scope.bind(p.Name, t)
			sig.params = append(sig.params, t)
		}
		ret, err := c.resolveType(fd.RetType)
		if err != nil {
			return err
		}
		body, err := c.checkExpr(fd.Body, scope, ret)
		if err != nil {
			return err
		}
		// Hidden slots cannot appear in a pure expression, so the body's
		// environment is exactly the parameters.
		sig.ret = ret
		sig.body = body
		c.funcs[fd.Name] = sig
	}
	return nil
}

// ruleScope tracks variable bindings while checking one rule.
type ruleScope struct {
	vars  map[string]int // name → slot
	slots []VarInfo
}

func (s *ruleScope) lookup(name string) (int, bool) {
	i, ok := s.vars[name]
	return i, ok
}

func (s *ruleScope) bind(name string, t *value.Type) int {
	slot := len(s.slots)
	s.slots = append(s.slots, VarInfo{Name: name, Type: t})
	if name != "" {
		s.vars[name] = slot
	}
	return slot
}

func (c *checker) checkRule(rule *ast.Rule) (*Rule, error) {
	head := c.out.RelByName[rule.Head.Rel]
	if head == nil {
		return nil, errorf(rule.Head.Pos, "undeclared relation %q", rule.Head.Rel)
	}
	if head.Role == ast.RoleInput {
		return nil, errorf(rule.Head.Pos, "input relation %q cannot be a rule head", head.Name)
	}
	if len(rule.Head.Args) != head.Arity() {
		return nil, errorf(rule.Head.Pos, "relation %q has %d columns but %d arguments given",
			head.Name, head.Arity(), len(rule.Head.Args))
	}
	scope := &ruleScope{vars: make(map[string]int)}
	out := &Rule{Head: head, Pos: rule.Pos}

	for ti, term := range rule.Body {
		switch term := term.(type) {
		case *ast.Literal:
			lt, err := c.checkLiteral(term, scope)
			if err != nil {
				return nil, err
			}
			out.Body = append(out.Body, lt)
		case *ast.Cond:
			e, err := c.checkExpr(term.Expr, scope, value.BoolType)
			if err != nil {
				return nil, err
			}
			out.Body = append(out.Body, &CondTerm{Expr: e, Pos: term.Pos})
		case *ast.Assign:
			if _, exists := scope.lookup(term.Var); exists {
				return nil, errorf(term.Pos, "variable %q already bound", term.Var)
			}
			e, err := c.checkExpr(term.Expr, scope, nil)
			if err != nil {
				return nil, err
			}
			slot := scope.bind(term.Var, e.Type())
			out.Body = append(out.Body, &AssignTerm{Slot: slot, Expr: e, Pos: term.Pos})
		case *ast.GroupBy:
			if ti != len(rule.Body)-1 {
				return nil, errorf(term.Pos, "group_by must be the last term of a rule body")
			}
			gb, err := c.checkGroupBy(term, scope)
			if err != nil {
				return nil, err
			}
			out.Body = append(out.Body, gb)
			out.GroupBy = gb
		default:
			return nil, errorf(term.Position(), "unsupported body term")
		}
	}

	// After a group_by, only the keys and the aggregate result are in scope.
	headScope := scope
	if out.GroupBy != nil {
		headScope = &ruleScope{vars: make(map[string]int), slots: scope.slots}
		for _, ks := range out.GroupBy.KeySlots {
			headScope.vars[scope.slots[ks].Name] = ks
		}
		headScope.vars[scope.slots[out.GroupBy.OutSlot].Name] = out.GroupBy.OutSlot
	}
	for i, arg := range rule.Head.Args {
		e, err := c.checkExpr(arg, headScope, head.Cols[i].Type)
		if err != nil {
			return nil, err
		}
		out.HeadExprs = append(out.HeadExprs, e)
	}
	out.Slots = headScope.slots
	return out, nil
}

func (c *checker) checkLiteral(lit *ast.Literal, scope *ruleScope) (*LiteralTerm, error) {
	rel := c.out.RelByName[lit.Rel]
	if rel == nil {
		return nil, errorf(lit.Pos, "undeclared relation %q", lit.Rel)
	}
	if len(lit.Args) != rel.Arity() {
		return nil, errorf(lit.Pos, "relation %q has %d columns but %d arguments given",
			rel.Name, rel.Arity(), len(lit.Args))
	}
	lt := &LiteralTerm{
		Rel:       rel,
		Negated:   lit.Negated,
		BindSlots: make([]int, rel.Arity()),
		Pos:       lit.Pos,
	}
	for i := range lt.BindSlots {
		lt.BindSlots[i] = -1
	}
	for i, arg := range lit.Args {
		colType := rel.Cols[i].Type
		switch arg := arg.(type) {
		case *ast.Wildcard:
			continue
		case *ast.Var:
			if slot, bound := scope.lookup(arg.Name); bound {
				// Repeated variable: equality check against the column.
				if !scope.slots[slot].Type.Equal(colType) {
					return nil, errorf(arg.Pos, "variable %q has type %s but column %s of %s has type %s",
						arg.Name, scope.slots[slot].Type, rel.Cols[i].Name, rel.Name, colType)
				}
				lt.Checks = append(lt.Checks, ColCheck{Col: i, Expr: &VarRef{Slot: slot, Name: arg.Name, T: colType}})
				continue
			}
			if lit.Negated {
				return nil, errorf(arg.Pos, "variable %q in negated literal must be bound by a positive term", arg.Name)
			}
			slot := scope.bind(arg.Name, colType)
			lt.BindSlots[i] = slot
		default:
			e, err := c.checkExpr(arg, scope, colType)
			if err != nil {
				return nil, err
			}
			lt.Checks = append(lt.Checks, ColCheck{Col: i, Expr: e})
		}
	}
	return lt, nil
}

func (c *checker) checkGroupBy(gb *ast.GroupBy, scope *ruleScope) (*GroupByTerm, error) {
	term := &GroupByTerm{Agg: gb.Agg, Pos: gb.Pos}
	seen := make(map[string]bool)
	for _, k := range gb.Keys {
		if seen[k] {
			return nil, errorf(gb.Pos, "duplicate group_by key %q", k)
		}
		seen[k] = true
		slot, ok := scope.lookup(k)
		if !ok {
			return nil, errorf(gb.Pos, "group_by key %q is not bound", k)
		}
		term.KeySlots = append(term.KeySlots, slot)
	}
	var outType *value.Type
	switch gb.Agg {
	case "count":
		outType = value.IntType
	case "sum", "min", "max":
		arg, err := c.checkExpr(gb.Arg, scope, nil)
		if err != nil {
			return nil, err
		}
		if gb.Agg == "sum" && !arg.Type().IsNumeric() {
			return nil, errorf(gb.Pos, "sum requires a numeric argument, got %s", arg.Type())
		}
		term.Arg = arg
		outType = arg.Type()
	default:
		return nil, errorf(gb.Pos, "unknown aggregate %q", gb.Agg)
	}
	if _, exists := scope.lookup(gb.Var); exists {
		return nil, errorf(gb.Pos, "variable %q already bound", gb.Var)
	}
	term.OutType = outType
	term.OutSlot = scope.bind(gb.Var, outType)
	return term, nil
}

// checkExpr type-checks e. If expected is non-nil the expression must have
// that type (integer literals adapt to it); otherwise the type is
// synthesized.
func (c *checker) checkExpr(e ast.Expr, scope *ruleScope, expected *value.Type) (Expr, error) {
	out, err := c.synthExpr(e, scope, expected)
	if err != nil {
		return nil, err
	}
	if expected != nil && !out.Type().Equal(expected) {
		return nil, errorf(e.Position(), "expression has type %s, expected %s", out.Type(), expected)
	}
	return out, nil
}

func (c *checker) synthExpr(e ast.Expr, scope *ruleScope, expected *value.Type) (Expr, error) {
	switch e := e.(type) {
	case *ast.BoolLit:
		return &Const{V: value.Bool(e.Val), T: value.BoolType}, nil
	case *ast.StringLit:
		return &Const{V: value.String(e.Val), T: value.StringType}, nil
	case *ast.IntLit:
		return c.checkIntLit(e, expected)
	case *ast.Var:
		slot, ok := scope.lookup(e.Name)
		if !ok {
			return nil, errorf(e.Pos, "unbound variable %q", e.Name)
		}
		return &VarRef{Slot: slot, Name: e.Name, T: scope.slots[slot].Type}, nil
	case *ast.Wildcard:
		return nil, errorf(e.Pos, "wildcard _ is only valid as a literal argument")
	case *ast.Unary:
		return c.checkUnary(e, scope, expected)
	case *ast.Binary:
		return c.checkBinary(e, scope, expected)
	case *ast.FieldAccess:
		inner, err := c.synthExpr(e.E, scope, nil)
		if err != nil {
			return nil, err
		}
		t := inner.Type()
		if t.Kind != value.TStruct {
			return nil, errorf(e.Pos, "field access on non-struct type %s", t)
		}
		idx := t.FieldIndex(e.Field)
		if idx < 0 {
			return nil, errorf(e.Pos, "type %s has no field %q", t, e.Field)
		}
		return &FieldGet{E: inner, Index: idx, T: t.Fields[idx].Type}, nil
	case *ast.TupleExpr:
		var expTypes []*value.Type
		if expected != nil && expected.Kind == value.TTuple && len(expected.Fields) == len(e.Elems) {
			for _, f := range expected.Fields {
				expTypes = append(expTypes, f.Type)
			}
		}
		elems := make([]Expr, len(e.Elems))
		types := make([]*value.Type, len(e.Elems))
		for i, el := range e.Elems {
			var exp *value.Type
			if expTypes != nil {
				exp = expTypes[i]
			}
			ee, err := c.synthExpr(el, scope, exp)
			if err != nil {
				return nil, err
			}
			elems[i] = ee
			types[i] = ee.Type()
		}
		return &MkTuple{Elems: elems, T: value.TupleType(types...)}, nil
	case *ast.StructExpr:
		t, ok := c.out.Types[e.Name]
		if !ok {
			return nil, errorf(e.Pos, "unknown type %q", e.Name)
		}
		if len(e.Fields) != len(t.Fields) {
			return nil, errorf(e.Pos, "type %s has %d fields but %d initializers given",
				e.Name, len(t.Fields), len(e.Fields))
		}
		elems := make([]Expr, len(t.Fields))
		for _, f := range e.Fields {
			idx := t.FieldIndex(f.Name)
			if idx < 0 {
				return nil, errorf(e.Pos, "type %s has no field %q", e.Name, f.Name)
			}
			if elems[idx] != nil {
				return nil, errorf(e.Pos, "field %q initialized twice", f.Name)
			}
			fe, err := c.checkExpr(f.Expr, scope, t.Fields[idx].Type)
			if err != nil {
				return nil, err
			}
			elems[idx] = fe
		}
		return &MkTuple{Elems: elems, T: t}, nil
	case *ast.Cast:
		inner, err := c.synthExpr(e.E, scope, nil)
		if err != nil {
			return nil, err
		}
		target, err := c.resolveType(e.Type)
		if err != nil {
			return nil, err
		}
		if !inner.Type().IsNumeric() || !target.IsNumeric() {
			return nil, errorf(e.Pos, "cannot cast %s to %s (numeric types only)", inner.Type(), target)
		}
		return &CastOp{E: inner, T: target}, nil
	case *ast.IfElse:
		cond, err := c.checkExpr(e.Cond, scope, value.BoolType)
		if err != nil {
			return nil, err
		}
		then, err := c.synthExpr(e.Then, scope, expected)
		if err != nil {
			return nil, err
		}
		els, err := c.checkExpr(e.Else, scope, then.Type())
		if err != nil {
			return nil, err
		}
		return &IfOp{Cond: cond, Then: then, Else: els, T: then.Type()}, nil
	case *ast.Call:
		return c.checkCall(e, scope, expected)
	default:
		return nil, errorf(e.Position(), "unsupported expression")
	}
}

func (c *checker) checkIntLit(e *ast.IntLit, expected *value.Type) (Expr, error) {
	if expected != nil && expected.Kind == value.TBit {
		if e.Neg {
			return nil, errorf(e.Pos, "negative literal for unsigned type %s", expected)
		}
		if value.MaskBits(e.Val, expected.Width) != e.Val {
			return nil, errorf(e.Pos, "literal %d overflows %s", e.Val, expected)
		}
		return &Const{V: value.Bit(e.Val), T: expected}, nil
	}
	// Default to int.
	n := int64(e.Val)
	if e.Neg {
		if e.Val > 1<<63 {
			return nil, errorf(e.Pos, "literal -%d underflows int", e.Val)
		}
		n = -int64(e.Val)
	} else if e.Val > 1<<63-1 {
		return nil, errorf(e.Pos, "literal %d overflows int", e.Val)
	}
	return &Const{V: value.Int(n), T: value.IntType}, nil
}

func (c *checker) checkUnary(e *ast.Unary, scope *ruleScope, expected *value.Type) (Expr, error) {
	switch e.Op {
	case ast.OpNot:
		inner, err := c.checkExpr(e.E, scope, value.BoolType)
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "not", E: inner, T: value.BoolType}, nil
	case ast.OpNeg:
		inner, err := c.checkExpr(e.E, scope, value.IntType)
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "-", E: inner, T: value.IntType}, nil
	case ast.OpBitNot:
		inner, err := c.synthExpr(e.E, scope, expected)
		if err != nil {
			return nil, err
		}
		if !inner.Type().IsNumeric() {
			return nil, errorf(e.Pos, "operator ~ requires a numeric operand, got %s", inner.Type())
		}
		return &UnOp{Op: "~", E: inner, Width: inner.Type().Width, T: inner.Type()}, nil
	default:
		return nil, errorf(e.Pos, "unsupported unary operator")
	}
}

var cmpOpNames = map[ast.BinaryOp]string{
	ast.OpEq: "==", ast.OpNe: "!=", ast.OpLt: "<", ast.OpLe: "<=",
	ast.OpGt: ">", ast.OpGe: ">=",
}

func (c *checker) checkBinary(e *ast.Binary, scope *ruleScope, expected *value.Type) (Expr, error) {
	if op, isCmp := cmpOpNames[e.Op]; isCmp {
		l, r, err := c.checkSameType(e.L, e.R, scope)
		if err != nil {
			return nil, err
		}
		if op != "==" && op != "!=" {
			t := l.Type()
			if !t.IsNumeric() && t.Kind != value.TString && t.Kind != value.TBool {
				return nil, errorf(e.Pos, "operator %s not defined on %s", op, t)
			}
		}
		return &Cmp{Op: op, L: l, R: r}, nil
	}
	switch e.Op {
	case ast.OpAnd, ast.OpOr:
		l, err := c.checkExpr(e.L, scope, value.BoolType)
		if err != nil {
			return nil, err
		}
		r, err := c.checkExpr(e.R, scope, value.BoolType)
		if err != nil {
			return nil, err
		}
		kind := BinLogAnd
		if e.Op == ast.OpOr {
			kind = BinLogOr
		}
		return &BinOp{Kind: kind, L: l, R: r, T: value.BoolType}, nil
	case ast.OpConcat:
		l, err := c.checkExpr(e.L, scope, value.StringType)
		if err != nil {
			return nil, err
		}
		r, err := c.checkExpr(e.R, scope, value.StringType)
		if err != nil {
			return nil, err
		}
		return &BinOp{Kind: BinConcat, L: l, R: r, T: value.StringType}, nil
	case ast.OpShl, ast.OpShr:
		var exp *value.Type
		if expected != nil && expected.IsNumeric() {
			exp = expected
		}
		l, err := c.synthExpr(e.L, scope, exp)
		if err != nil {
			return nil, err
		}
		if !l.Type().IsNumeric() {
			return nil, errorf(e.Pos, "shift requires a numeric left operand, got %s", l.Type())
		}
		r, err := c.synthExpr(e.R, scope, value.IntType)
		if err != nil {
			return nil, err
		}
		if !r.Type().IsNumeric() {
			return nil, errorf(e.Pos, "shift amount must be numeric, got %s", r.Type())
		}
		kind := BinShl
		if e.Op == ast.OpShr {
			kind = BinShr
		}
		return &BinOp{Kind: kind, L: l, R: r, Width: l.Type().Width, T: l.Type()}, nil
	}
	// Arithmetic and bitwise operators over matching numeric types.
	l, r, err := c.checkSameTypeExpected(e.L, e.R, scope, expected)
	if err != nil {
		return nil, err
	}
	t := l.Type()
	if !t.IsNumeric() {
		return nil, errorf(e.Pos, "operator %s requires numeric operands, got %s", e.Op, t)
	}
	isBit := t.Kind == value.TBit
	var kind BinOpKind
	switch e.Op {
	case ast.OpAdd:
		kind = pick(isBit, BinAddBit, BinAddInt)
	case ast.OpSub:
		kind = pick(isBit, BinSubBit, BinSubInt)
	case ast.OpMul:
		kind = pick(isBit, BinMulBit, BinMulInt)
	case ast.OpDiv:
		kind = pick(isBit, BinDivBit, BinDivInt)
	case ast.OpMod:
		kind = pick(isBit, BinModBit, BinModInt)
	case ast.OpBitAnd:
		kind = BinAnd
	case ast.OpBitOr:
		kind = BinOr
	case ast.OpBitXor:
		kind = BinXor
	default:
		return nil, errorf(e.Pos, "unsupported binary operator %s", e.Op)
	}
	return &BinOp{Kind: kind, L: l, R: r, Width: t.Width, T: t}, nil
}

func pick(cond bool, a, b BinOpKind) BinOpKind {
	if cond {
		return a
	}
	return b
}

// checkSameType checks two operands that must share a type, letting integer
// literals adapt to the other side.
func (c *checker) checkSameType(le, re ast.Expr, scope *ruleScope) (Expr, Expr, error) {
	return c.checkSameTypeExpected(le, re, scope, nil)
}

func (c *checker) checkSameTypeExpected(le, re ast.Expr, scope *ruleScope, expected *value.Type) (Expr, Expr, error) {
	_, lLit := le.(*ast.IntLit)
	_, rLit := re.(*ast.IntLit)
	switch {
	case lLit && !rLit:
		r, err := c.synthExpr(re, scope, expected)
		if err != nil {
			return nil, nil, err
		}
		l, err := c.checkExpr(le, scope, r.Type())
		return l, r, err
	default:
		l, err := c.synthExpr(le, scope, expected)
		if err != nil {
			return nil, nil, err
		}
		r, err := c.checkExpr(re, scope, l.Type())
		if err != nil {
			return nil, nil, err
		}
		return l, r, nil
	}
}

var builtins = map[string]struct {
	arity int
}{
	"hash64": {1}, "len": {1}, "to_string": {1}, "substr": {3},
	"string_contains": {2}, "string_starts_with": {2},
	"min": {2}, "max": {2}, "abs": {1},
}

func (c *checker) checkCall(e *ast.Call, scope *ruleScope, expected *value.Type) (Expr, error) {
	b, ok := builtins[e.Name]
	if !ok {
		if sig, isUser := c.funcs[e.Name]; isUser {
			if len(e.Args) != len(sig.params) {
				return nil, errorf(e.Pos, "function %q takes %d arguments, got %d",
					e.Name, len(sig.params), len(e.Args))
			}
			args := make([]Expr, len(e.Args))
			for i, a := range e.Args {
				ae, err := c.checkExpr(a, scope, sig.params[i])
				if err != nil {
					return nil, err
				}
				args[i] = ae
			}
			return &FuncCall{Name: e.Name, Args: args, Body: sig.body, T: sig.ret}, nil
		}
		return nil, errorf(e.Pos, "unknown function %q", e.Name)
	}
	if len(e.Args) != b.arity {
		return nil, errorf(e.Pos, "function %q takes %d arguments, got %d", e.Name, b.arity, len(e.Args))
	}
	var args []Expr
	addChecked := func(a ast.Expr, t *value.Type) error {
		ae, err := c.checkExpr(a, scope, t)
		if err != nil {
			return err
		}
		args = append(args, ae)
		return nil
	}
	var t *value.Type
	switch e.Name {
	case "hash64":
		a, err := c.synthExpr(e.Args[0], scope, nil)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		t = value.BitType(64)
	case "len":
		if err := addChecked(e.Args[0], value.StringType); err != nil {
			return nil, err
		}
		t = value.IntType
	case "to_string":
		a, err := c.synthExpr(e.Args[0], scope, nil)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		t = value.StringType
	case "substr":
		if err := addChecked(e.Args[0], value.StringType); err != nil {
			return nil, err
		}
		if err := addChecked(e.Args[1], value.IntType); err != nil {
			return nil, err
		}
		if err := addChecked(e.Args[2], value.IntType); err != nil {
			return nil, err
		}
		t = value.StringType
	case "string_contains", "string_starts_with":
		if err := addChecked(e.Args[0], value.StringType); err != nil {
			return nil, err
		}
		if err := addChecked(e.Args[1], value.StringType); err != nil {
			return nil, err
		}
		t = value.BoolType
	case "min", "max":
		l, r, err := c.checkSameTypeExpected(e.Args[0], e.Args[1], scope, expected)
		if err != nil {
			return nil, err
		}
		if !l.Type().IsNumeric() && l.Type().Kind != value.TString {
			return nil, errorf(e.Pos, "%s requires numeric or string arguments, got %s", e.Name, l.Type())
		}
		args = append(args, l, r)
		t = l.Type()
	case "abs":
		if err := addChecked(e.Args[0], value.IntType); err != nil {
			return nil, err
		}
		t = value.IntType
	}
	return &CallOp{Name: e.Name, Args: args, T: t}, nil
}
