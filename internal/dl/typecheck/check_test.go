package typecheck

import (
	"strings"
	"testing"

	"repro/internal/dl/ast"
	"repro/internal/dl/parser"
	"repro/internal/dl/value"
)

func check(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	checked, err := Check(prog)
	if err != nil {
		t.Fatalf("check: %v\nsource:\n%s", err, src)
	}
	return checked
}

func checkErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatalf("Check succeeded, want error containing %q\nsource:\n%s", wantSubstr, src)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSubstr)
	}
}

const declPrelude = `
	input relation Edge(a: string, b: string)
	input relation Num(k: string, v: int)
	input relation Bits(k: string, v: bit<12>)
	output relation Out(a: string, b: string)
	output relation OutI(k: string, v: int)
`

func TestCheckSimpleRule(t *testing.T) {
	p := check(t, declPrelude+`Out(a, b) :- Edge(a, b).`)
	if len(p.Rules) != 1 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Head.Name != "Out" || len(r.HeadExprs) != 2 || len(r.Slots) != 2 {
		t.Errorf("rule shape wrong: %+v", r)
	}
	lit := r.Body[0].(*LiteralTerm)
	if lit.BindSlots[0] != 0 || lit.BindSlots[1] != 1 || len(lit.Checks) != 0 {
		t.Errorf("literal binding wrong: %+v", lit)
	}
	if !r.HeadIsPattern() {
		t.Errorf("head should be a pattern")
	}
}

func TestCheckRepeatedVarBecomesCheck(t *testing.T) {
	p := check(t, declPrelude+`Out(a, a) :- Edge(a, a).`)
	lit := p.Rules[0].Body[0].(*LiteralTerm)
	if lit.BindSlots[0] != 0 || lit.BindSlots[1] != -1 || len(lit.Checks) != 1 {
		t.Errorf("repeated var: binds=%v checks=%d", lit.BindSlots, len(lit.Checks))
	}
}

func TestCheckJoinSharedVariable(t *testing.T) {
	p := check(t, declPrelude+`Out(a, c) :- Edge(a, b), Edge(b, c).`)
	second := p.Rules[0].Body[1].(*LiteralTerm)
	// b is bound by the first literal, so it becomes a check on column 0.
	if second.BindSlots[0] != -1 || len(second.Checks) != 1 || second.Checks[0].Col != 0 {
		t.Errorf("join literal wrong: %+v", second)
	}
}

func TestCheckNegation(t *testing.T) {
	check(t, declPrelude+`Out(a, b) :- Edge(a, b), not Edge(b, a).`)
	checkErr(t, declPrelude+`Out(a, b) :- Edge(a, b), not Edge(c, a).`,
		"negated literal must be bound")
}

func TestCheckWildcard(t *testing.T) {
	p := check(t, declPrelude+`OutI(k, v) :- Num(k, v), Edge(k, _).`)
	lit := p.Rules[0].Body[1].(*LiteralTerm)
	if lit.BindSlots[1] != -1 || len(lit.Checks) != 1 {
		t.Errorf("wildcard literal wrong: %+v", lit)
	}
}

func TestCheckAssignAndCond(t *testing.T) {
	p := check(t, declPrelude+`OutI(k, w) :- Num(k, v), var w = v * 2 + 1, w > 10.`)
	r := p.Rules[0]
	if len(r.Body) != 3 {
		t.Fatalf("body = %d terms", len(r.Body))
	}
	as := r.Body[1].(*AssignTerm)
	if !as.Expr.Type().Equal(value.IntType) {
		t.Errorf("assign type = %s", as.Expr.Type())
	}
	cond := r.Body[2].(*CondTerm)
	if !cond.Expr.Type().Equal(value.BoolType) {
		t.Errorf("cond type = %s", cond.Expr.Type())
	}
}

func TestCheckGroupBy(t *testing.T) {
	p := check(t, declPrelude+`OutI(k, s) :- Num(k, v), var s = sum(v) group_by (k).`)
	gb := p.Rules[0].GroupBy
	if gb == nil || gb.Agg != "sum" || len(gb.KeySlots) != 1 {
		t.Fatalf("group_by = %+v", gb)
	}
	if !gb.OutType.Equal(value.IntType) {
		t.Errorf("sum out type = %s", gb.OutType)
	}
	// Head may only reference keys and the aggregate output.
	checkErr(t, declPrelude+`OutI(k, v) :- Num(k, v), var s = sum(v) group_by (k).`,
		"unbound variable")
}

func TestCheckBitArithmetic(t *testing.T) {
	src := declPrelude + `
	output relation OutB(k: string, v: bit<12>)
	OutB(k, v + 1) :- Bits(k, v).`
	p := check(t, src)
	be := p.Rules[0].HeadExprs[1].(*BinOp)
	if be.Kind != BinAddBit || be.Width != 12 {
		t.Errorf("bit add = %+v", be)
	}
}

func TestCheckTypeErrors(t *testing.T) {
	cases := map[string]struct{ src, want string }{
		"undeclared head":     {`Out2(a) :- Edge(a, _).`, "undeclared relation"},
		"undeclared body":     {declPrelude + `Out(a, a) :- Foo(a).`, "undeclared relation"},
		"head into input":     {declPrelude + `Edge(a, a) :- Out(a, _).`, "cannot be a rule head"},
		"arity mismatch":      {declPrelude + `Out(a, b) :- Edge(a, b, b).`, "columns"},
		"type mismatch":       {declPrelude + `OutI(k, v) :- Num(v, k).`, "type"},
		"string plus int":     {declPrelude + `OutI(k, v + 1) :- Edge(k, v).`, "expected string"},
		"unbound in head":     {declPrelude + `Out(a, z) :- Edge(a, _).`, "unbound variable"},
		"bit literal too big": {declPrelude + `OutB2(v) :- Bits(_, v), v == 5000.`, "undeclared"},
		"bad cast":            {declPrelude + `Out(a, b) :- Edge(a, b), var x = a as bit<8>.`, "cast"},
		"dup column":          {`relation R(x: int, x: int)`, "duplicate column"},
		"dup relation":        {`relation R(x: int) relation R(y: int)`, "redeclared"},
		"recursive typedef":   {`typedef T = T{f: T}`, "recursively defined"},
		"unknown function":    {declPrelude + `OutI(k, foo(v)) :- Num(k, v).`, "unknown function"},
		"sum of strings":      {declPrelude + `OutI(k, s) :- Edge(k, v), var s = sum(v) group_by (k).`, "numeric"},
		"groupby unbound key": {declPrelude + `OutI(k, s) :- Num(k, v), var s = sum(v) group_by (z).`, "not bound"},
		"div type clash":      {declPrelude + `OutI(k, v / w) :- Num(k, v), Bits(k, w).`, "type"},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) { checkErr(t, c.src, c.want) })
	}
}

func TestCheckLiteralOverflow(t *testing.T) {
	checkErr(t, `
		input relation B(v: bit<4>)
		output relation O(v: bit<4>)
		O(20) :- B(_).`, "overflows")
}

func TestCheckTypedefsAndStructs(t *testing.T) {
	src := `
	typedef Cfg = Cfg{vid: bit<12>, tagged: bool}
	input relation Port(id: string, cfg: Cfg)
	output relation Vlan(id: string, vid: bit<12>)
	Vlan(id, cfg.vid) :- Port(id, cfg), not cfg.tagged.
	Vlan(id, c.vid) :- Port(id, _), var c = Cfg{vid = 7, tagged = false}.
	`
	p := check(t, src)
	if len(p.Rules) != 2 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	fg := p.Rules[0].HeadExprs[1].(*FieldGet)
	if fg.Index != 0 || !fg.Type().Equal(value.BitType(12)) {
		t.Errorf("field access = %+v", fg)
	}
}

func TestCheckFacts(t *testing.T) {
	p := check(t, declPrelude+`Out("a", "b").`)
	r := p.Rules[0]
	if len(r.Body) != 0 || len(r.HeadExprs) != 2 {
		t.Fatalf("fact shape wrong")
	}
	v, err := r.HeadExprs[0].Eval(nil)
	if err != nil || v.Str() != "a" {
		t.Errorf("fact head eval = %v, %v", v, err)
	}
}

func TestExprEval(t *testing.T) {
	// Build a program whose rule exercises many operators, then evaluate
	// the head expressions directly.
	src := `
	input relation In(a: int, b: int, s: string)
	output relation O(x: int, y: string, z: bool)
	O(if (a > b) a else b, s ++ "!", a == b and not (a < 0)) :- In(a, b, s).
	`
	p := check(t, src)
	env := []value.Value{value.Int(3), value.Int(5), value.String("hi")}
	r := p.Rules[0]
	x, err := r.HeadExprs[0].Eval(env)
	if err != nil || x.Int() != 5 {
		t.Errorf("if-else eval = %v, %v", x, err)
	}
	y, _ := r.HeadExprs[1].Eval(env)
	if y.Str() != "hi!" {
		t.Errorf("concat eval = %v", y)
	}
	z, _ := r.HeadExprs[2].Eval(env)
	if z.Bool() {
		t.Errorf("bool eval = %v", z)
	}
}

func TestExprEvalDivZero(t *testing.T) {
	src := `
	input relation In(a: int)
	output relation O(x: int)
	O(10 / a) :- In(a).
	`
	p := check(t, src)
	_, err := p.Rules[0].HeadExprs[0].Eval([]value.Value{value.Int(0)})
	if err == nil {
		t.Errorf("division by zero did not error")
	}
	v, err := p.Rules[0].HeadExprs[0].Eval([]value.Value{value.Int(2)})
	if err != nil || v.Int() != 5 {
		t.Errorf("eval = %v, %v", v, err)
	}
}

func TestBitWrapping(t *testing.T) {
	src := `
	input relation In(a: bit<8>)
	output relation O(x: bit<8>)
	O(a + 200) :- In(a).
	`
	p := check(t, src)
	v, err := p.Rules[0].HeadExprs[0].Eval([]value.Value{value.Bit(100)})
	if err != nil || v.Bit() != (100+200)%256 {
		t.Errorf("bit wrap eval = %v, %v", v, err)
	}
}

func TestBuiltinEval(t *testing.T) {
	src := `
	input relation In(s: string, n: int)
	output relation O(a: string, b: int, c: bool, d: string)
	O(substr(s, 1, 3), len(s), string_contains(s, "ell"), to_string(n)) :- In(s, n).
	`
	p := check(t, src)
	env := []value.Value{value.String("hello"), value.Int(42)}
	r := p.Rules[0]
	got := make([]value.Value, 4)
	for i := range got {
		var err error
		got[i], err = r.HeadExprs[i].Eval(env)
		if err != nil {
			t.Fatalf("eval %d: %v", i, err)
		}
	}
	if got[0].Str() != "el" || got[1].Int() != 5 || !got[2].Bool() || got[3].Str() != "42" {
		t.Errorf("builtins = %v", got)
	}
}

func TestCheckRecordValidation(t *testing.T) {
	p := check(t, declPrelude)
	edge := p.Relation("Edge")
	ok := value.Record{value.String("a"), value.String("b")}
	if err := edge.CheckRecord(ok); err != nil {
		t.Errorf("CheckRecord(ok) = %v", err)
	}
	if err := edge.CheckRecord(value.Record{value.Int(1), value.String("b")}); err == nil {
		t.Errorf("CheckRecord accepted ill-typed record")
	}
	if err := edge.CheckRecord(ok[:1]); err == nil {
		t.Errorf("CheckRecord accepted wrong arity")
	}
}

func TestRoleAndPatternHeads(t *testing.T) {
	p := check(t, declPrelude+`OutI(k, v + 1) :- Num(k, v).`)
	if p.Rules[0].HeadIsPattern() {
		t.Errorf("computed head misreported as pattern")
	}
	if p.Relation("Edge").Role != ast.RoleInput || p.Relation("Out").Role != ast.RoleOutput {
		t.Errorf("roles wrong")
	}
}
