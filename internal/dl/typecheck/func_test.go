package typecheck

import (
	"strings"
	"testing"

	"repro/internal/dl/parser"
	"repro/internal/dl/value"
)

func TestUserFunctions(t *testing.T) {
	src := `
	function double(x: int): int = x * 2
	function clamp(x: int, lo: int, hi: int): int = if (x < lo) lo else if (x > hi) hi else x
	function quad(x: int): int = double(double(x))
	input relation In(v: int)
	output relation O(a: int, b: int, c: int)
	O(double(v), clamp(v, 0, 10), quad(v)) :- In(v).
	`
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Check(tree)
	if err != nil {
		t.Fatal(err)
	}
	env := []value.Value{value.Int(30)}
	r := prog.Rules[0]
	a, err := r.HeadExprs[0].Eval(env)
	if err != nil || a.Int() != 60 {
		t.Errorf("double(30) = %v, %v", a, err)
	}
	b, err := r.HeadExprs[1].Eval(env)
	if err != nil || b.Int() != 10 {
		t.Errorf("clamp(30, 0, 10) = %v, %v", b, err)
	}
	c, err := r.HeadExprs[2].Eval(env)
	if err != nil || c.Int() != 120 {
		t.Errorf("quad(30) = %v, %v", c, err)
	}
}

func TestUserFunctionErrors(t *testing.T) {
	cases := map[string]struct{ src, want string }{
		"recursion": {
			`function f(x: int): int = f(x)`, "unknown function"},
		"forward reference": {
			`function f(x: int): int = g(x)
			 function g(x: int): int = x`, "unknown function"},
		"redeclared": {
			`function f(x: int): int = x
			 function f(y: int): int = y`, "redeclared"},
		"builtin clash": {
			`function hash64(x: int): int = x`, "builtin"},
		"body type mismatch": {
			`function f(x: int): string = x + 1`, "expected string"},
		"bad arity at call": {
			`function f(x: int): int = x
			 input relation In(v: int)
			 output relation O(v: int)
			 O(f(v, v)) :- In(v).`, "takes 1 arguments"},
		"bad arg type": {
			`function f(x: int): int = x
			 input relation In(s: string)
			 output relation O(v: int)
			 O(f(s)) :- In(s).`, "expected int"},
		"dup param": {
			`function f(x: int, x: int): int = x`, "duplicate parameter"},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			tree, err := parser.Parse(c.src)
			if err == nil {
				_, err = Check(tree)
			}
			if err == nil {
				t.Fatalf("accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestUserFunctionRuntimeError(t *testing.T) {
	src := `
	function inv(x: int): int = 100 / x
	input relation In(v: int)
	output relation O(v: int)
	O(inv(v)) :- In(v).
	`
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Check(tree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Rules[0].HeadExprs[0].Eval([]value.Value{value.Int(0)}); err == nil {
		t.Fatalf("division by zero inside function did not error")
	}
	v, err := prog.Rules[0].HeadExprs[0].Eval([]value.Value{value.Int(4)})
	if err != nil || v.Int() != 25 {
		t.Fatalf("inv(4) = %v, %v", v, err)
	}
}
