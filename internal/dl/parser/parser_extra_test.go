package parser

import (
	"testing"

	"repro/internal/dl/ast"
)

func TestParseFunctionDecls(t *testing.T) {
	prog := mustParse(t, `
		function inc(x: int): int = x + 1
		function pair(a: int, b: string): (int, string) = (a, b)
		function constant(): bool = true
		R(inc(v)) :- In(v).
		input relation In(v: int)
		output relation R(v: int)
	`)
	if len(prog.Functions) != 3 {
		t.Fatalf("functions = %d", len(prog.Functions))
	}
	f := prog.Functions[0]
	if f.Name != "inc" || len(f.Params) != 1 {
		t.Errorf("inc = %+v", f)
	}
	if _, ok := f.Body.(*ast.Binary); !ok {
		t.Errorf("inc body = %T", f.Body)
	}
	if len(prog.Functions[2].Params) != 0 {
		t.Errorf("constant params = %+v", prog.Functions[2].Params)
	}
}

func TestParseFunctionErrors(t *testing.T) {
	bad := map[string]string{
		"uppercase name": `function Inc(x: int): int = x`,
		"missing return": `function inc(x: int) = x`,
		"missing body":   `function inc(x: int): int`,
		"bad param":      `function inc(x): int = x`,
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseMoreEdgeCases(t *testing.T) {
	// Nested tuples, chained field access, casts inside calls.
	prog := mustParse(t, `
		typedef In = In{p: (int, string)}
		input relation R(v: In)
		output relation O(x: string)
		O(to_string(((v.p), 1))) :- R(v).
	`)
	if len(prog.Rules) != 1 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}

	// Empty tuple and single-element parenthesization.
	prog = mustParse(t, `
		input relation A(x: int)
		output relation B(x: int)
		B((x)) :- A(x), var u = (), var t = (x, x, x).
	`)
	assign := prog.Rules[0].Body[1].(*ast.Assign)
	if te, ok := assign.Expr.(*ast.TupleExpr); !ok || len(te.Elems) != 0 {
		t.Errorf("unit tuple = %+v", assign.Expr)
	}
	triple := prog.Rules[0].Body[2].(*ast.Assign).Expr.(*ast.TupleExpr)
	if len(triple.Elems) != 3 {
		t.Errorf("triple = %+v", triple)
	}
}

func TestParseOperatorChains(t *testing.T) {
	prog := mustParse(t, `
		input relation A(x: int)
		output relation B(x: int)
		B(y) :- A(x), var y = x | x ^ x & x << 1 >> 2 + 3 * 4 % 5 - 6.
	`)
	// Just verify it parses into a Binary with | at the top (lowest of
	// the arithmetic precedence levels used).
	top := prog.Rules[0].Body[1].(*ast.Assign).Expr.(*ast.Binary)
	if top.Op != ast.OpBitOr {
		t.Errorf("top op = %v, want |", top.Op)
	}
}

func TestParseDeeplyNestedExpr(t *testing.T) {
	src := `
	input relation A(x: int)
	output relation B(x: int)
	B(if (x > 0) if (x > 1) if (x > 2) 3 else 2 else 1 else 0) :- A(x).
	`
	prog := mustParse(t, src)
	outer := prog.Rules[0].Head.Args[0].(*ast.IfElse)
	inner := outer.Then.(*ast.IfElse)
	if _, ok := inner.Then.(*ast.IfElse); !ok {
		t.Errorf("nesting lost: %T", inner.Then)
	}
}

func TestParseNotOfAtomVsExpr(t *testing.T) {
	// "not X(...)" with uppercase X is a negated literal; "not (a or b)"
	// is a boolean expression.
	prog := mustParse(t, `
		input relation A(x: bool)
		input relation B(x: bool)
		output relation O(x: bool)
		O(x) :- A(x), not B(x).
		O(x) :- A(x), not (x or false).
	`)
	if lit, ok := prog.Rules[0].Body[1].(*ast.Literal); !ok || !lit.Negated {
		t.Errorf("negated literal parsed as %T", prog.Rules[0].Body[1])
	}
	if cond, ok := prog.Rules[1].Body[1].(*ast.Cond); !ok {
		t.Errorf("negated expr parsed as %T", prog.Rules[1].Body[1])
	} else if u, ok := cond.Expr.(*ast.Unary); !ok || u.Op != ast.OpNot {
		t.Errorf("cond = %+v", cond.Expr)
	}
}

func TestParsePositionsInErrors(t *testing.T) {
	_, err := Parse("input relation R(x: int)\nR(y) :- R(x), zzz(.")
	if err == nil {
		t.Fatal("accepted")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if perr.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Pos.Line)
	}
}
