package parser

import "testing"

// FuzzParse asserts the parser never panics: any input either parses or
// returns a positioned error.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"input relation R(x: int)",
		"R(x) :- A(x), not B(x, _).",
		"typedef P = P{a: bit<12>, b: string}",
		"O(k, s) :- In(k, v), var s = sum(v) group_by (k).",
		"function f(x: int): int = x + 1",
		`O(if (a > 0) "p" else "n") :- In(a).`,
		"R(x) :- A(x), x > 0x1f, var y = (x, x).",
		"R(\"\\n\\t\") :- A(_).",
		"relation R(x: (int, (string, bool)))",
		"R(x) :- A(x)", // missing dot
		"((((((((((",   // garbage
		"R(x as bit<9>) :- A(x).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatalf("nil program without error")
		}
	})
}
