package parser

import (
	"strings"
	"testing"

	"repro/internal/dl/ast"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v\nsource:\n%s", err, src)
	}
	return prog
}

func TestParseRelationDecls(t *testing.T) {
	prog := mustParse(t, `
		input relation Port(id: string, vlan: bit<12>, tagged: bool)
		output relation InVlan(port: bit<9>, vlan: bit<12>)
		relation Internal(x: int)
	`)
	if len(prog.Relations) != 3 {
		t.Fatalf("relations = %d, want 3", len(prog.Relations))
	}
	r0 := prog.Relations[0]
	if r0.Role != ast.RoleInput || r0.Name != "Port" || len(r0.Params) != 3 {
		t.Errorf("Port decl wrong: %+v", r0)
	}
	if bt, ok := r0.Params[1].Type.(*ast.BitTypeExpr); !ok || bt.Width != 12 {
		t.Errorf("vlan type = %v", r0.Params[1].Type)
	}
	if prog.Relations[1].Role != ast.RoleOutput {
		t.Errorf("InVlan role = %v", prog.Relations[1].Role)
	}
	if prog.Relations[2].Role != ast.RoleInternal {
		t.Errorf("Internal role = %v", prog.Relations[2].Role)
	}
}

func TestParseTypedef(t *testing.T) {
	prog := mustParse(t, `typedef Pt = Pt{x: int, y: bit<8>}`)
	if len(prog.Typedefs) != 1 {
		t.Fatalf("typedefs = %d", len(prog.Typedefs))
	}
	td := prog.Typedefs[0]
	if td.Name != "Pt" || len(td.Fields) != 2 || td.Fields[1].Name != "y" {
		t.Errorf("typedef = %+v", td)
	}
}

func TestParseRules(t *testing.T) {
	prog := mustParse(t, `
		Label(n1, l) :- GivenLabel(n1, l).
		Label(n2, l) :- Label(n1, l), Edge(n1, n2).
		Neg(a) :- A(a), not B(a, _).
		Guarded(a, b) :- A(a), var b = a + 1, a > 2.
		Fact(1, "x").
	`)
	if len(prog.Rules) != 5 {
		t.Fatalf("rules = %d, want 5", len(prog.Rules))
	}
	r1 := prog.Rules[1]
	if r1.Head.Rel != "Label" || len(r1.Body) != 2 {
		t.Errorf("recursive rule parsed wrong: %+v", r1)
	}
	neg := prog.Rules[2].Body[1].(*ast.Literal)
	if !neg.Negated || neg.Rel != "B" {
		t.Errorf("negated literal parsed wrong: %+v", neg)
	}
	if _, ok := neg.Args[1].(*ast.Wildcard); !ok {
		t.Errorf("wildcard arg parsed wrong: %T", neg.Args[1])
	}
	g := prog.Rules[3]
	if _, ok := g.Body[1].(*ast.Assign); !ok {
		t.Errorf("assign term parsed wrong: %T", g.Body[1])
	}
	if _, ok := g.Body[2].(*ast.Cond); !ok {
		t.Errorf("cond term parsed wrong: %T", g.Body[2])
	}
	if len(prog.Rules[4].Body) != 0 {
		t.Errorf("fact has a body")
	}
}

func TestParseGroupBy(t *testing.T) {
	prog := mustParse(t, `Out(k, s) :- In(k, v), var s = sum(v) group_by (k).`)
	gb, ok := prog.Rules[0].Body[1].(*ast.GroupBy)
	if !ok {
		t.Fatalf("body[1] = %T, want GroupBy", prog.Rules[0].Body[1])
	}
	if gb.Agg != "sum" || gb.Var != "s" || len(gb.Keys) != 1 || gb.Keys[0] != "k" {
		t.Errorf("group_by = %+v", gb)
	}
	prog = mustParse(t, `Out(k, c) :- In(k, v), var c = count() group_by (k).`)
	gb = prog.Rules[0].Body[1].(*ast.GroupBy)
	if gb.Agg != "count" || gb.Arg != nil {
		t.Errorf("count group_by = %+v", gb)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	prog := mustParse(t, `R(x) :- A(a), var x = a + 2 * 3.`)
	assign := prog.Rules[0].Body[1].(*ast.Assign)
	add, ok := assign.Expr.(*ast.Binary)
	if !ok || add.Op != ast.OpAdd {
		t.Fatalf("top op = %+v, want +", assign.Expr)
	}
	mul, ok := add.R.(*ast.Binary)
	if !ok || mul.Op != ast.OpMul {
		t.Errorf("right op = %+v, want *", add.R)
	}
}

func TestParseExprForms(t *testing.T) {
	src := `R(x) :- A(a, s),
		var x = if (a > 0 and not (a == 3)) hash64(s) else 0,
		var y = a as bit<16>,
		var z = Pt{x = 1, y = 2},
		var w = z.x,
		var t = (a, s),
		var c = s ++ "suffix",
		var n = -5,
		var m = ~a.`
	prog := mustParse(t, src)
	if len(prog.Rules[0].Body) != 9 {
		t.Fatalf("body terms = %d", len(prog.Rules[0].Body))
	}
	ife := prog.Rules[0].Body[1].(*ast.Assign).Expr.(*ast.IfElse)
	if _, ok := ife.Cond.(*ast.Binary); !ok {
		t.Errorf("if condition = %T", ife.Cond)
	}
	if _, ok := prog.Rules[0].Body[2].(*ast.Assign).Expr.(*ast.Cast); !ok {
		t.Errorf("cast = %T", prog.Rules[0].Body[2].(*ast.Assign).Expr)
	}
	se := prog.Rules[0].Body[3].(*ast.Assign).Expr.(*ast.StructExpr)
	if se.Name != "Pt" || len(se.Fields) != 2 {
		t.Errorf("struct expr = %+v", se)
	}
	fa := prog.Rules[0].Body[4].(*ast.Assign).Expr.(*ast.FieldAccess)
	if fa.Field != "x" {
		t.Errorf("field access = %+v", fa)
	}
	te := prog.Rules[0].Body[5].(*ast.Assign).Expr.(*ast.TupleExpr)
	if len(te.Elems) != 2 {
		t.Errorf("tuple expr = %+v", te)
	}
	neg := prog.Rules[0].Body[7].(*ast.Assign).Expr.(*ast.IntLit)
	if !neg.Neg || neg.Val != 5 {
		t.Errorf("negative literal = %+v", neg)
	}
}

func TestFieldAccessVsRuleDot(t *testing.T) {
	// The trailing dot terminates the rule even right after a variable.
	prog := mustParse(t, `R(x) :- A(x), x > 0.
		S(y) :- B(y).`)
	if len(prog.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(prog.Rules))
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"missing dot":             `R(x) :- A(x)`,
		"lowercase relation":      `r(x) :- A(x).`,
		"empty atom":              `R() :- A(x).`,
		"empty relation":          `relation R()`,
		"bad bit width":           `relation R(x: bit<65>)`,
		"uppercase variable":      `R(x) :- A(x), var Y = 1.`,
		"group_by non-agg":        `R(x, s) :- A(x, v), var s = foo(v) group_by (x).`,
		"sum missing arg":         `R(x, s) :- A(x, v), var s = sum() group_by (x).`,
		"ctor name mismatch":      `typedef A = B{x: int}`,
		"atom in expression":      `R(x) :- A(x), var y = B(x).`,
		"dangling type name":      `R(x) :- A(x), var y = Foo.`,
		"missing else":            `R(x) :- A(x), var y = if (x > 0) 1.`,
		"trailing garbage number": `R(x) :- A(x), x > 1f.`,
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse(%q) succeeded, want error", name, src)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("%s: error lacks position: %v", name, err)
		}
	}
}

func TestParseSnvsStyleProgram(t *testing.T) {
	// A miniature of the snvs program exercising most constructs together.
	src := `
	// VLAN assignment for the simple network virtual switch.
	typedef PortCfg = PortCfg{vid: bit<12>, tagged: bool}

	input relation Port(id: string, port: bit<9>, cfg: PortCfg)
	input relation MacLearned(port: bit<9>, vlan: bit<12>, mac: bit<48>)
	output relation InVlan(port: bit<9>, vlan: bit<12>)
	output relation FwdEntry(vlan: bit<12>, mac: bit<48>, port: bit<9>)

	InVlan(p, cfg.vid) :- Port(_, p, cfg), not cfg.tagged.
	FwdEntry(v, m, p) :- MacLearned(p, v, m).
	`
	prog := mustParse(t, src)
	if len(prog.Rules) != 2 || len(prog.Relations) != 4 || len(prog.Typedefs) != 1 {
		t.Errorf("program shape: %d rules, %d relations, %d typedefs",
			len(prog.Rules), len(prog.Relations), len(prog.Typedefs))
	}
}
