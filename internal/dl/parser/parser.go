// Package parser builds the Datalog dialect AST from source text.
//
// Grammar sketch (see the README's language reference for details):
//
//	program  := { typedef | reldecl | rule }
//	typedef  := "typedef" Name "=" Name "{" params "}"
//	reldecl  := ["input"|"output"] "relation" Name "(" params ")"
//	rule     := atom [ ":-" bodyterm { "," bodyterm } ] "."
//	bodyterm := ["not"] atom
//	          | "var" ident "=" expr [ "group_by" "(" ident {"," ident} ")" ]
//	          | expr                      (boolean guard)
//
// Relation and type names start with an upper-case letter; variables with a
// lower-case letter or underscore.
package parser

import (
	"fmt"

	"repro/internal/dl/ast"
	"repro/internal/dl/lexer"
)

// Error is a parse error with source position.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []lexer.Token
	i    int
}

// Parse parses a complete program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	for p.cur().Kind != lexer.EOF {
		switch p.cur().Kind {
		case lexer.KwTypedef:
			td, err := p.parseTypedef()
			if err != nil {
				return nil, err
			}
			prog.Typedefs = append(prog.Typedefs, td)
		case lexer.KwInput, lexer.KwOutput, lexer.KwRelation:
			rd, err := p.parseRelationDecl()
			if err != nil {
				return nil, err
			}
			prog.Relations = append(prog.Relations, rd)
		case lexer.KwFunction:
			fd, err := p.parseFuncDecl()
			if err != nil {
				return nil, err
			}
			prog.Functions = append(prog.Functions, fd)
		default:
			rule, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			prog.Rules = append(prog.Rules, rule)
		}
	}
	return prog, nil
}

func (p *parser) cur() lexer.Token  { return p.toks[p.i] }
func (p *parser) next() lexer.Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errorf(pos ast.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	if p.cur().Kind != k {
		return lexer.Token{}, p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) accept(k lexer.Kind) bool {
	if p.cur().Kind == k {
		p.i++
		return true
	}
	return false
}

func (p *parser) parseTypedef() (*ast.Typedef, error) {
	kw := p.next() // typedef
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if !lexer.IsUpperIdent(name.Text) {
		return nil, p.errorf(name.Pos, "type name %q must start with an upper-case letter", name.Text)
	}
	if _, err := p.expect(lexer.Assign); err != nil {
		return nil, err
	}
	ctor, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if ctor.Text != name.Text {
		return nil, p.errorf(ctor.Pos, "constructor %q must match type name %q", ctor.Text, name.Text)
	}
	if _, err := p.expect(lexer.LBrace); err != nil {
		return nil, err
	}
	fields, err := p.parseParams(lexer.RBrace)
	if err != nil {
		return nil, err
	}
	return &ast.Typedef{Pos: kw.Pos, Name: name.Text, Fields: fields}, nil
}

// parseFuncDecl parses: function name(p: T, ...): RT = expr
func (p *parser) parseFuncDecl() (*ast.FuncDecl, error) {
	kw := p.next() // function
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if lexer.IsUpperIdent(name.Text) {
		return nil, p.errorf(name.Pos, "function name %q must start with a lower-case letter", name.Text)
	}
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	params, err := p.parseParams(lexer.RParen)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Colon); err != nil {
		return nil, err
	}
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Assign); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ast.FuncDecl{Pos: kw.Pos, Name: name.Text, Params: params,
		RetType: ret, Body: body}, nil
}

func (p *parser) parseRelationDecl() (*ast.RelationDecl, error) {
	role := ast.RoleInternal
	pos := p.cur().Pos
	switch p.cur().Kind {
	case lexer.KwInput:
		role = ast.RoleInput
		p.next()
	case lexer.KwOutput:
		role = ast.RoleOutput
		p.next()
	}
	if _, err := p.expect(lexer.KwRelation); err != nil {
		return nil, err
	}
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if !lexer.IsUpperIdent(name.Text) {
		return nil, p.errorf(name.Pos, "relation name %q must start with an upper-case letter", name.Text)
	}
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	params, err := p.parseParams(lexer.RParen)
	if err != nil {
		return nil, err
	}
	if len(params) == 0 {
		return nil, p.errorf(name.Pos, "relation %q has no columns", name.Text)
	}
	return &ast.RelationDecl{Pos: pos, Role: role, Name: name.Text, Params: params}, nil
}

// parseParams parses "name: type, ..." up to the closing token, consuming it.
func (p *parser) parseParams(closing lexer.Kind) ([]ast.Param, error) {
	var params []ast.Param
	if p.accept(closing) {
		return params, nil
	}
	for {
		name, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Colon); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		params = append(params, ast.Param{Pos: name.Pos, Name: name.Text, Type: ty})
		if p.accept(closing) {
			return params, nil
		}
		if _, err := p.expect(lexer.Comma); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseType() (ast.TypeExpr, error) {
	tok := p.cur()
	switch tok.Kind {
	case lexer.KwBool:
		p.next()
		return &ast.NamedType{Pos: tok.Pos, Name: "bool"}, nil
	case lexer.KwInt:
		p.next()
		return &ast.NamedType{Pos: tok.Pos, Name: "int"}, nil
	case lexer.KwString:
		p.next()
		return &ast.NamedType{Pos: tok.Pos, Name: "string"}, nil
	case lexer.KwBit:
		p.next()
		if _, err := p.expect(lexer.Lt); err != nil {
			return nil, err
		}
		w, err := p.expect(lexer.Number)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Gt); err != nil {
			return nil, err
		}
		if w.Num < 1 || w.Num > 64 {
			return nil, p.errorf(w.Pos, "bit width %d out of range 1..64", w.Num)
		}
		return &ast.BitTypeExpr{Pos: tok.Pos, Width: int(w.Num)}, nil
	case lexer.Ident:
		p.next()
		if !lexer.IsUpperIdent(tok.Text) {
			return nil, p.errorf(tok.Pos, "type name %q must start with an upper-case letter", tok.Text)
		}
		return &ast.NamedType{Pos: tok.Pos, Name: tok.Text}, nil
	case lexer.LParen:
		p.next()
		var elems []ast.TypeExpr
		for {
			e, err := p.parseType()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if p.accept(lexer.RParen) {
				break
			}
			if _, err := p.expect(lexer.Comma); err != nil {
				return nil, err
			}
		}
		if len(elems) == 1 {
			return elems[0], nil
		}
		return &ast.TupleTypeExpr{Pos: tok.Pos, Elems: elems}, nil
	default:
		return nil, p.errorf(tok.Pos, "expected a type, found %s", tok)
	}
}

func (p *parser) parseRule() (*ast.Rule, error) {
	head, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	rule := &ast.Rule{Pos: head.Pos, Head: head}
	if p.accept(lexer.Dot) {
		return rule, nil // fact
	}
	if _, err := p.expect(lexer.ColonDash); err != nil {
		return nil, err
	}
	for {
		term, err := p.parseBodyTerm()
		if err != nil {
			return nil, err
		}
		rule.Body = append(rule.Body, term)
		if p.accept(lexer.Dot) {
			return rule, nil
		}
		if _, err := p.expect(lexer.Comma); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseAtom() (ast.Atom, error) {
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return ast.Atom{}, err
	}
	if !lexer.IsUpperIdent(name.Text) {
		return ast.Atom{}, p.errorf(name.Pos, "relation name %q must start with an upper-case letter", name.Text)
	}
	if _, err := p.expect(lexer.LParen); err != nil {
		return ast.Atom{}, err
	}
	atom := ast.Atom{Pos: name.Pos, Rel: name.Text}
	if p.accept(lexer.RParen) {
		return ast.Atom{}, p.errorf(name.Pos, "atom %q has no arguments", name.Text)
	}
	for {
		arg, err := p.parseExpr()
		if err != nil {
			return ast.Atom{}, err
		}
		atom.Args = append(atom.Args, arg)
		if p.accept(lexer.RParen) {
			return atom, nil
		}
		if _, err := p.expect(lexer.Comma); err != nil {
			return ast.Atom{}, err
		}
	}
}

// isAtomStart reports whether the upcoming tokens begin a relation atom:
// an upper-case identifier immediately followed by '('.
func (p *parser) isAtomStart() bool {
	return p.cur().Kind == lexer.Ident && lexer.IsUpperIdent(p.cur().Text) &&
		p.i+1 < len(p.toks) && p.toks[p.i+1].Kind == lexer.LParen
}

func (p *parser) parseBodyTerm() (ast.BodyTerm, error) {
	tok := p.cur()
	switch {
	case tok.Kind == lexer.KwNot && p.i+1 < len(p.toks) &&
		p.toks[p.i+1].Kind == lexer.Ident && lexer.IsUpperIdent(p.toks[p.i+1].Text):
		p.next()
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &ast.Literal{Atom: atom, Negated: true}, nil
	case tok.Kind == lexer.KwVar:
		p.next()
		name, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		if lexer.IsUpperIdent(name.Text) {
			return nil, p.errorf(name.Pos, "variable %q must start with a lower-case letter", name.Text)
		}
		if _, err := p.expect(lexer.Assign); err != nil {
			return nil, err
		}
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.cur().Kind != lexer.KwGroupBy {
			return &ast.Assign{Pos: tok.Pos, Var: name.Text, Expr: expr}, nil
		}
		p.next() // group_by
		call, ok := expr.(*ast.Call)
		if !ok || !isAggName(call.Name) {
			return nil, p.errorf(expr.Position(), "group_by requires an aggregate call (count, sum, min, max)")
		}
		if len(call.Args) > 1 {
			return nil, p.errorf(call.Pos, "aggregate %s takes at most one argument", call.Name)
		}
		if call.Name != "count" && len(call.Args) != 1 {
			return nil, p.errorf(call.Pos, "aggregate %s requires an argument", call.Name)
		}
		if _, err := p.expect(lexer.LParen); err != nil {
			return nil, err
		}
		var keys []string
		for {
			k, err := p.expect(lexer.Ident)
			if err != nil {
				return nil, err
			}
			keys = append(keys, k.Text)
			if p.accept(lexer.RParen) {
				break
			}
			if _, err := p.expect(lexer.Comma); err != nil {
				return nil, err
			}
		}
		gb := &ast.GroupBy{Pos: tok.Pos, Var: name.Text, Agg: call.Name, Keys: keys}
		if len(call.Args) == 1 {
			gb.Arg = call.Args[0]
		}
		return gb, nil
	case p.isAtomStart():
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &ast.Literal{Atom: atom}, nil
	default:
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Cond{Pos: tok.Pos, Expr: expr}, nil
	}
}

func isAggName(s string) bool {
	switch s {
	case "count", "sum", "min", "max":
		return true
	}
	return false
}

// Expression parsing, by descending precedence.

func (p *parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == lexer.KwOr {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Pos: pos, Op: ast.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == lexer.KwAnd {
		pos := p.next().Pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Pos: pos, Op: ast.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (ast.Expr, error) {
	if p.cur().Kind == lexer.KwNot {
		pos := p.next().Pos
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Pos: pos, Op: ast.OpNot, E: e}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[lexer.Kind]ast.BinaryOp{
	lexer.Eq: ast.OpEq, lexer.Ne: ast.OpNe, lexer.Lt: ast.OpLt,
	lexer.Le: ast.OpLe, lexer.Gt: ast.OpGt, lexer.Ge: ast.OpGe,
}

func (p *parser) parseCmp() (ast.Expr, error) {
	l, err := p.parseBitOr()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		pos := p.next().Pos
		r, err := p.parseBitOr()
		if err != nil {
			return nil, err
		}
		return &ast.Binary{Pos: pos, Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseBinaryChain(sub func() (ast.Expr, error), ops map[lexer.Kind]ast.BinaryOp) (ast.Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := ops[p.cur().Kind]
		if !ok {
			return l, nil
		}
		pos := p.next().Pos
		r, err := sub()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Pos: pos, Op: op, L: l, R: r}
	}
}

func (p *parser) parseBitOr() (ast.Expr, error) {
	return p.parseBinaryChain(p.parseBitXor, map[lexer.Kind]ast.BinaryOp{lexer.Pipe: ast.OpBitOr})
}

func (p *parser) parseBitXor() (ast.Expr, error) {
	return p.parseBinaryChain(p.parseBitAnd, map[lexer.Kind]ast.BinaryOp{lexer.Caret: ast.OpBitXor})
}

func (p *parser) parseBitAnd() (ast.Expr, error) {
	return p.parseBinaryChain(p.parseShift, map[lexer.Kind]ast.BinaryOp{lexer.Amp: ast.OpBitAnd})
}

func (p *parser) parseShift() (ast.Expr, error) {
	return p.parseBinaryChain(p.parseAdd, map[lexer.Kind]ast.BinaryOp{
		lexer.Shl: ast.OpShl, lexer.Shr: ast.OpShr,
	})
}

func (p *parser) parseAdd() (ast.Expr, error) {
	return p.parseBinaryChain(p.parseMul, map[lexer.Kind]ast.BinaryOp{
		lexer.Plus: ast.OpAdd, lexer.Minus: ast.OpSub, lexer.Concat: ast.OpConcat,
	})
}

func (p *parser) parseMul() (ast.Expr, error) {
	return p.parseBinaryChain(p.parseUnary, map[lexer.Kind]ast.BinaryOp{
		lexer.Star: ast.OpMul, lexer.Slash: ast.OpDiv, lexer.Percent: ast.OpMod,
	})
}

func (p *parser) parseUnary() (ast.Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case lexer.Minus:
		p.next()
		// Fold a negated integer literal immediately so -9223372036854775808
		// style values round-trip.
		if p.cur().Kind == lexer.Number {
			n := p.next()
			return p.parsePostfixOn(&ast.IntLit{Pos: tok.Pos, Val: n.Num, Neg: true})
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Pos: tok.Pos, Op: ast.OpNeg, E: e}, nil
	case lexer.Tilde:
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Pos: tok.Pos, Op: ast.OpBitNot, E: e}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (ast.Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return p.parsePostfixOn(e)
}

func (p *parser) parsePostfixOn(e ast.Expr) (ast.Expr, error) {
	for {
		switch p.cur().Kind {
		case lexer.Dot:
			// Field access only when followed by an identifier; a bare dot is
			// the rule terminator.
			if p.i+1 < len(p.toks) && p.toks[p.i+1].Kind == lexer.Ident &&
				!lexer.IsUpperIdent(p.toks[p.i+1].Text) {
				pos := p.next().Pos
				f := p.next()
				e = &ast.FieldAccess{Pos: pos, E: e, Field: f.Text}
				continue
			}
			return e, nil
		case lexer.KwAs:
			pos := p.next().Pos
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			e = &ast.Cast{Pos: pos, E: e, Type: ty}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case lexer.KwTrue:
		p.next()
		return &ast.BoolLit{Pos: tok.Pos, Val: true}, nil
	case lexer.KwFalse:
		p.next()
		return &ast.BoolLit{Pos: tok.Pos, Val: false}, nil
	case lexer.Number:
		p.next()
		return &ast.IntLit{Pos: tok.Pos, Val: tok.Num}, nil
	case lexer.Str:
		p.next()
		return &ast.StringLit{Pos: tok.Pos, Val: tok.Text}, nil
	case lexer.Wildcard:
		p.next()
		return &ast.Wildcard{Pos: tok.Pos}, nil
	case lexer.KwIf:
		p.next()
		if _, err := p.expect(lexer.LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.KwElse); err != nil {
			return nil, err
		}
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ast.IfElse{Pos: tok.Pos, Cond: cond, Then: then, Else: els}, nil
	case lexer.Ident:
		p.next()
		switch p.cur().Kind {
		case lexer.LParen:
			if lexer.IsUpperIdent(tok.Text) {
				return nil, p.errorf(tok.Pos, "relation atom %q is not valid inside an expression", tok.Text)
			}
			p.next()
			call := &ast.Call{Pos: tok.Pos, Name: tok.Text}
			if p.accept(lexer.RParen) {
				return call, nil
			}
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.accept(lexer.RParen) {
					return call, nil
				}
				if _, err := p.expect(lexer.Comma); err != nil {
					return nil, err
				}
			}
		case lexer.LBrace:
			if !lexer.IsUpperIdent(tok.Text) {
				return nil, p.errorf(tok.Pos, "struct constructor %q must be a type name", tok.Text)
			}
			p.next()
			se := &ast.StructExpr{Pos: tok.Pos, Name: tok.Text}
			if p.accept(lexer.RBrace) {
				return se, nil
			}
			for {
				f, err := p.expect(lexer.Ident)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(lexer.Assign); err != nil {
					return nil, err
				}
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				se.Fields = append(se.Fields, ast.StructField{Name: f.Text, Expr: e})
				if p.accept(lexer.RBrace) {
					return se, nil
				}
				if _, err := p.expect(lexer.Comma); err != nil {
					return nil, err
				}
			}
		default:
			if lexer.IsUpperIdent(tok.Text) {
				return nil, p.errorf(tok.Pos, "unexpected type or relation name %q in expression", tok.Text)
			}
			return &ast.Var{Pos: tok.Pos, Name: tok.Text}, nil
		}
	case lexer.LParen:
		p.next()
		if p.accept(lexer.RParen) {
			return &ast.TupleExpr{Pos: tok.Pos}, nil
		}
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(lexer.RParen) {
			return first, nil
		}
		te := &ast.TupleExpr{Pos: tok.Pos, Elems: []ast.Expr{first}}
		for {
			if _, err := p.expect(lexer.Comma); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			te.Elems = append(te.Elems, e)
			if p.accept(lexer.RParen) {
				return te, nil
			}
		}
	default:
		return nil, p.errorf(tok.Pos, "expected an expression, found %s", tok)
	}
}
