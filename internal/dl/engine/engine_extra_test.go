package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dl/ast"
	"repro/internal/dl/value"
)

func TestWholeRelationNegation(t *testing.T) {
	// not B(_, _): the condition is the whole relation's emptiness.
	rt := newRT(t, `
		input relation A(x: string)
		input relation B(p: string, q: string)
		output relation O(x: string)
		O(x) :- A(x), not B(_, _).
	`)
	apply(t, rt, Insert("A", strRec("v")))
	wantContents(t, rt, "O", `("v")`)
	apply(t, rt, Insert("B", strRec("any", "thing")))
	wantContents(t, rt, "O")
	apply(t, rt, Insert("B", strRec("more", "rows")))
	wantContents(t, rt, "O")
	apply(t, rt, Delete("B", strRec("any", "thing")))
	wantContents(t, rt, "O")
	apply(t, rt, Delete("B", strRec("more", "rows")))
	wantContents(t, rt, "O", `("v")`)
}

func TestStructValuesThroughRelations(t *testing.T) {
	rt := newRT(t, `
		typedef Cfg = Cfg{vid: bit<12>, tagged: bool}
		input relation Port(id: string, cfg: Cfg)
		output relation Untagged(id: string, vid: bit<12>)
		Untagged(id, cfg.vid) :- Port(id, cfg), not cfg.tagged.
	`)
	mk := func(id string, vid uint64, tagged bool) value.Record {
		return value.Record{value.String(id), value.Tuple(value.Bit(vid), value.Bool(tagged))}
	}
	apply(t, rt, Insert("Port", mk("a", 7, false)), Insert("Port", mk("b", 9, true)))
	wantContents(t, rt, "Untagged", `("a", 7)`)
}

func TestStringBuiltinsInRules(t *testing.T) {
	rt := newRT(t, `
		input relation Host(name: string)
		output relation Web(name: string, label: string)
		Web(n, "web-" ++ n) :- Host(n), string_starts_with(n, "web").
	`)
	apply(t, rt, Insert("Host", strRec("web1")), Insert("Host", strRec("db1")))
	wantContents(t, rt, "Web", `("web1", "web-web1")`)
}

func TestFactIntoRecursiveStratum(t *testing.T) {
	// A fact feeding a recursive relation exercises unit rules inside the
	// DRed stratum machinery.
	rt := newRT(t, `
		input relation Edge(a: string, b: string)
		output relation Reach(n: string)
		Reach("seed").
		Reach(b) :- Reach(a), Edge(a, b).
	`)
	wantContents(t, rt, "Reach", `("seed")`)
	apply(t, rt, Insert("Edge", strRec("seed", "x")))
	wantContents(t, rt, "Reach", `("seed")`, `("x")`)
	apply(t, rt, Delete("Edge", strRec("seed", "x")))
	wantContents(t, rt, "Reach", `("seed")`)
}

func TestGroupByMultipleKeys(t *testing.T) {
	rt := newRT(t, `
		input relation M(a: string, b: string, v: int)
		output relation S(a: string, b: string, total: int)
		S(a, b, s) :- M(a, b, v), var s = sum(v) group_by (a, b).
	`)
	m := func(a, b string, v int64) value.Record {
		return value.Record{value.String(a), value.String(b), value.Int(v)}
	}
	apply(t, rt,
		Insert("M", m("x", "1", 5)), Insert("M", m("x", "1", 7)),
		Insert("M", m("x", "2", 1)),
	)
	wantContents(t, rt, "S", `("x", "1", 12)`, `("x", "2", 1)`)
	apply(t, rt, Delete("M", m("x", "1", 5)))
	wantContents(t, rt, "S", `("x", "1", 7)`, `("x", "2", 1)`)
}

func TestGroupByComputedKey(t *testing.T) {
	rt := newRT(t, `
		input relation M(k: int, v: int)
		output relation S(bucket: int, n: int)
		S(b, c) :- M(k, _), var b = k % 2, var c = count() group_by (b).
	`)
	m := func(k, v int64) value.Record { return value.Record{value.Int(k), value.Int(v)} }
	apply(t, rt, Insert("M", m(1, 0)), Insert("M", m(2, 0)), Insert("M", m(3, 0)))
	wantContents(t, rt, "S", `(0, 1)`, `(1, 2)`)
}

func TestCastsInRules(t *testing.T) {
	rt := newRT(t, `
		input relation N(v: int)
		output relation B(w: bit<8>)
		B(v as bit<8>) :- N(v).
	`)
	apply(t, rt, Insert("N", value.Record{value.Int(300)}))
	// 300 masked to 8 bits = 44.
	wantContents(t, rt, "B", `(44)`)
}

func TestSameRelationPositiveAndNegative(t *testing.T) {
	// R appears both positively and negatively in one rule.
	rt := newRT(t, `
		input relation R(a: string, b: string)
		output relation Root(a: string)
		Root(a) :- R(a, _), not R(_, a).
	`)
	apply(t, rt, Insert("R", strRec("r", "c1")), Insert("R", strRec("c1", "c2")))
	wantContents(t, rt, "Root", `("r")`)
	// Making r a child retracts its root-ness.
	apply(t, rt, Insert("R", strRec("c2", "r")))
	wantContents(t, rt, "Root")
	apply(t, rt, Delete("R", strRec("c2", "r")))
	wantContents(t, rt, "Root", `("r")`)
}

func TestPropEquivalenceRootsAndDoubleNegation(t *testing.T) {
	src := `
	input relation R(a: string, b: string)
	output relation Root(a: string)
	output relation Inner(a: string)
	Root(a) :- R(a, _), not R(_, a).
	Inner(a) :- R(a, _), R(_, a).
	`
	gen := func(r *rand.Rand, insert bool) Update {
		return Update{
			Relation: "R",
			Rec:      strRec(fmt.Sprintf("n%d", r.Intn(5)), fmt.Sprintf("n%d", r.Intn(5))),
			Insert:   insert,
		}
	}
	runEquivalence(t, src, gen, 80, 4, 21)
	runEquivalence(t, src, gen, 80, 4, 22)
}

func TestPropEquivalenceRecursionWithNegation(t *testing.T) {
	// Reachability from non-blocked seeds; negation below recursion.
	src := `
	input relation Seed(n: string)
	input relation Block(n: string)
	input relation Edge(a: string, b: string)
	relation Ok(n: string)
	output relation Reach(n: string)
	Ok(n) :- Seed(n), not Block(n).
	Reach(n) :- Ok(n).
	Reach(b) :- Reach(a), Edge(a, b).
	`
	gen := func(r *rand.Rand, insert bool) Update {
		switch r.Intn(4) {
		case 0:
			return Update{Relation: "Seed", Rec: strRec(fmt.Sprintf("n%d", r.Intn(5))), Insert: insert}
		case 1:
			return Update{Relation: "Block", Rec: strRec(fmt.Sprintf("n%d", r.Intn(5))), Insert: insert}
		default:
			return Update{Relation: "Edge",
				Rec:    strRec(fmt.Sprintf("n%d", r.Intn(5)), fmt.Sprintf("n%d", r.Intn(5))),
				Insert: insert}
		}
	}
	runEquivalence(t, src, gen, 70, 4, 23)
	runEquivalence(t, src, gen, 70, 4, 24)
}

func TestEmptyTransactionIsNoOp(t *testing.T) {
	rt := newRT(t, projSrc)
	d := apply(t, rt)
	if len(d) != 0 {
		t.Fatalf("empty transaction produced deltas: %v", d)
	}
}

func TestInsertDeleteSameTxnCancels(t *testing.T) {
	rt := newRT(t, projSrc)
	d := apply(t, rt,
		Insert("In", strRec("x", "y")),
		Delete("In", strRec("x", "y")),
	)
	// Staging dedup: last op wins (delete of an absent row: no-op).
	if len(d) != 0 {
		t.Fatalf("self-cancelling transaction produced deltas: %v", d)
	}
	wantContents(t, rt, "Out")
}

func TestNaiveEvalErrors(t *testing.T) {
	prog := compile(t, projSrc)
	if _, err := NaiveEval(prog, map[string][]value.Record{"Nope": nil}); err == nil {
		t.Errorf("unknown relation accepted")
	}
	if _, err := NaiveEval(prog, map[string][]value.Record{"Out": {strRec("a", "b")}}); err == nil {
		t.Errorf("non-input relation accepted")
	}
	if _, err := NaiveEval(prog, map[string][]value.Record{"In": {strRec("a")}}); err == nil {
		t.Errorf("ill-typed record accepted")
	}
}

func TestUserFunctionsIncremental(t *testing.T) {
	rt := newRT(t, `
		function bucket(v: int): int = v % 3
		input relation N(v: int)
		output relation B(b: int)
		B(bucket(v)) :- N(v).
	`)
	n := func(v int64) value.Record { return value.Record{value.Int(v)} }
	apply(t, rt, Insert("N", n(4)), Insert("N", n(7)), Insert("N", n(5)))
	// 4%3=1, 7%3=1 (two derivations), 5%3=2.
	wantContents(t, rt, "B", `(1)`, `(2)`)
	apply(t, rt, Delete("N", n(4)))
	wantContents(t, rt, "B", `(1)`, `(2)`) // still derived by 7
	apply(t, rt, Delete("N", n(7)))
	wantContents(t, rt, "B", `(2)`)
}

// runEquivalenceOpts is runEquivalence with engine options (used to pin
// the RecursiveDeleteFallback path to the same semantics).
func runEquivalenceOpts(t *testing.T, src string, opts Options, gen func(r *rand.Rand, insert bool) Update, txns, opsPerTxn int, seed int64) {
	t.Helper()
	prog := compile(t, src)
	rt, err := New(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	live := make(map[string]map[string]value.Record)
	for _, rel := range prog.Relations {
		if rel.Role == ast.RoleInput {
			live[rel.Name] = make(map[string]value.Record)
		}
	}
	for txn := 0; txn < txns; txn++ {
		var ups []Update
		for i := 0; i < 1+r.Intn(opsPerTxn); i++ {
			u := gen(r, r.Intn(3) > 0)
			ups = append(ups, u)
			if u.Insert {
				live[u.Relation][u.Rec.Key()] = u.Rec
			} else {
				delete(live[u.Relation], u.Rec.Key())
			}
		}
		if _, err := rt.Apply(ups); err != nil {
			t.Fatalf("txn %d: %v", txn, err)
		}
		inputs := make(map[string][]value.Record)
		for name, m := range live {
			for _, rec := range m {
				inputs[name] = append(inputs[name], rec)
			}
		}
		want, err := NaiveEval(prog, inputs)
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		for _, rel := range prog.Relations {
			got, _ := rt.Contents(rel.Name)
			if len(got) != len(want[rel.Name]) {
				t.Fatalf("txn %d: %s has %d records, naive %d", txn, rel.Name, len(got), len(want[rel.Name]))
			}
			for i := range got {
				if !got[i].Equal(want[rel.Name][i]) {
					t.Fatalf("txn %d: %s[%d] = %v, naive %v", txn, rel.Name, i, got[i], want[rel.Name][i])
				}
			}
		}
	}
}

func TestPropEquivalenceWithDeleteFallback(t *testing.T) {
	// Dense churn on a small universe makes overdeletes routinely exceed
	// the budget, forcing the recompute path; semantics must not change.
	gen := func(r *rand.Rand, insert bool) Update {
		if r.Intn(5) == 0 {
			return Update{
				Relation: "GivenLabel",
				Rec:      strRec(fmt.Sprintf("n%d", r.Intn(5)), "L"),
				Insert:   insert,
			}
		}
		return Update{
			Relation: "Edge",
			Rec:      strRec(fmt.Sprintf("n%d", r.Intn(5)), fmt.Sprintf("n%d", r.Intn(5))),
			Insert:   insert,
		}
	}
	opts := Options{RecursiveDeleteFallback: 0.3}
	runEquivalenceOpts(t, reachSrc, opts, gen, 80, 4, 31)
	runEquivalenceOpts(t, reachSrc, opts, gen, 80, 4, 32)
	// An aggressive budget (every deletion recomputes) must also agree.
	opts = Options{RecursiveDeleteFallback: 0.0000001}
	runEquivalenceOpts(t, reachSrc, opts, gen, 60, 4, 33)
}

func TestDeleteFallbackTriggers(t *testing.T) {
	// A cycle where deleting the entry edge overdeletes everything: with
	// a tiny budget the fallback must engage and still be correct.
	rt, err := New(compile(t, reachSrc), Options{RecursiveDeleteFallback: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var ups []Update
	ups = append(ups, Insert("GivenLabel", strRec("root", "L")))
	ups = append(ups, Insert("Edge", strRec("root", "c0")))
	for i := 0; i < 20; i++ {
		ups = append(ups, Insert("Edge", strRec(
			fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", (i+1)%20))))
	}
	if _, err := rt.Apply(ups); err != nil {
		t.Fatal(err)
	}
	recs, _ := rt.Contents("Label")
	if len(recs) != 21 {
		t.Fatalf("labels = %d, want 21", len(recs))
	}
	d, err := rt.Apply([]Update{Delete("Edge", strRec("root", "c0"))})
	if err != nil {
		t.Fatal(err)
	}
	recs, _ = rt.Contents("Label")
	if len(recs) != 1 {
		t.Fatalf("labels after cut = %d, want 1", len(recs))
	}
	// The output delta is exactly the 20 retracted labels.
	if d["Label"] == nil || d["Label"].Len() != 20 {
		t.Fatalf("delta = %v", d["Label"])
	}
}

func TestPropEquivalenceAggregateOverRecursion(t *testing.T) {
	// Aggregation consuming a recursive relation: count reachable nodes
	// per label (stratified: aggregate above the recursive stratum).
	src := `
	input relation GivenLabel(n: string, label: string)
	input relation Edge(a: string, b: string)
	relation Label(n: string, label: string)
	output relation Spread(label: string, n: int)
	Label(n, l) :- GivenLabel(n, l).
	Label(n2, l) :- Label(n1, l), Edge(n1, n2).
	Spread(l, c) :- Label(n, l), var c = count() group_by (l).
	`
	gen := func(r *rand.Rand, insert bool) Update {
		if r.Intn(4) == 0 {
			return Update{
				Relation: "GivenLabel",
				Rec:      strRec(fmt.Sprintf("n%d", r.Intn(5)), fmt.Sprintf("L%d", r.Intn(2))),
				Insert:   insert,
			}
		}
		return Update{
			Relation: "Edge",
			Rec:      strRec(fmt.Sprintf("n%d", r.Intn(5)), fmt.Sprintf("n%d", r.Intn(5))),
			Insert:   insert,
		}
	}
	runEquivalence(t, src, gen, 70, 4, 41)
	runEquivalence(t, src, gen, 70, 4, 42)
}

func TestPropEquivalenceMinMaxChurn(t *testing.T) {
	// min/max must re-derive the next extremum when the current one is
	// deleted, and downstream joins must see the change as a retract+insert.
	src := `
	input relation M(k: string, v: int)
	input relation Limit(k: string, cap: int)
	relation Lo(k: string, m: int)
	relation Hi(k: string, m: int)
	output relation Span(k: string, lo: int, hi: int)
	output relation Over(k: string)
	Lo(k, m) :- M(k, v), var m = min(v) group_by (k).
	Hi(k, m) :- M(k, v), var m = max(v) group_by (k).
	Span(k, l, h) :- Lo(k, l), Hi(k, h).
	Over(k) :- Hi(k, h), Limit(k, c), h > c.
	`
	gen := func(r *rand.Rand, insert bool) Update {
		if r.Intn(5) == 0 {
			return Update{
				Relation: "Limit",
				Rec: value.Record{
					value.String(fmt.Sprintf("k%d", r.Intn(3))),
					value.Int(int64(r.Intn(6))),
				},
				Insert: insert,
			}
		}
		return Update{
			Relation: "M",
			Rec: value.Record{
				value.String(fmt.Sprintf("k%d", r.Intn(3))),
				value.Int(int64(r.Intn(8))),
			},
			Insert: insert,
		}
	}
	runEquivalence(t, src, gen, 90, 4, 51)
	runEquivalence(t, src, gen, 90, 4, 52)
}
