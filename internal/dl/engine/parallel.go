package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dl/typecheck"
	"repro/internal/dl/value"
	"repro/internal/dl/zset"
)

// This file implements the worker pool for parallel plan evaluation
// (Options.Workers > 1). The design keeps the engine's determinism
// invariant — output deltas are byte-identical to sequential evaluation —
// by splitting every propagation step into two phases:
//
//  1. an evaluation phase that is strictly read-only with respect to
//     relation state (plans only probe arrangements; expression evaluation
//     is pure), fanned out across workers, each accumulating results in
//     private storage; and
//  2. a sequential merge phase that applies the accumulated results.
//
// Counting strata merge through applyCount, whose weight additions
// commute, so worker interleaving cannot change the settled state.
// Recursive strata replace the sequential LIFO cascade with breadth-first
// rounds: all frontier tuples are evaluated in parallel against a frozen
// view, then their consequences are applied and the next frontier is
// built. Fixpoint confluence (chaotic iteration) makes the reached
// fixpoint independent of round structure.

// minParallelJobs is the batch size below which fan-out overhead
// outweighs the win and evaluation stays on the calling goroutine.
const minParallelJobs = 16

// seedJob is one independent unit of evaluation work: a plan seeded with a
// tuple (or a negation transition key, or nothing for unit plans).
type seedJob struct {
	p    *plan
	seed value.Record
	// key is the seed's canonical record key when the gathering site had
	// it at hand (counting-stratum deltas are keyed Z-sets); empty
	// otherwise. Provenance capture hashes it instead of re-encoding the
	// seed at every emit.
	key  string
	w    int64
	mode viewMode
	head *relState
}

// cand is one head contribution collected during a recursive-stratum
// evaluation round. ruleIdx carries the emitting rule's profiling index
// so the sequential merge can attribute presence transitions (unused
// with rule profiling off).
type cand struct {
	rel     *relState
	rec     value.Record
	key     string
	ruleIdx int
}

// evalCtx is per-goroutine evaluation scratch: the variable environment and
// the key-encoding buffer. Reusing it across plan runs keeps the
// arrangement probe path allocation-free.
type evalCtx struct {
	env    []value.Value
	keyBuf []byte
	// capture/trail implement provenance recording (provenance.go): when
	// capture is on, trail is the stack of body facts the current plan
	// run has joined so far. runPlan resets both, so pooled contexts
	// never leak state across runs.
	capture bool
	trail   []provInput
	// memoSeed{Key,Rel,Hash} memoize the last seed fact's identity hash
	// across the several plans one seed feeds (runPlan).
	memoSeedKey  string
	memoSeedRel  *relState
	memoSeedHash uint64
	// sigBuf is the per-goroutine encode scratch for derivation sig
	// hashing (provenance.go sigHash).
	sigBuf []byte
	// journal receives buffered provenance ops. The sequential context
	// points at the store's own journal; worker contexts buffer into
	// their private journal (priv), absorbed at the join barrier.
	journal *provJournal
	priv    provJournal
	// prof is the per-rule profiling accumulator (empty unless
	// CollectRuleStats). The sequential context aliases the runtime's
	// transaction accumulator; worker contexts get private slices sized
	// by attachRuleProf and absorbed at the join barrier. curRule is the
	// rule index of the seeding currently evaluating in this context, so
	// emit closures can attribute presence transitions.
	prof    []ruleAcc
	curRule int
}

// attachRuleProf sizes (and zeroes) pooled worker contexts' private
// profiling accumulators before a fan-out (no-op with profiling off).
func (rt *Runtime) attachRuleProf(ctxs []*evalCtx) {
	if rt.ruleProf == nil {
		return
	}
	n := len(rt.ruleProf)
	for _, c := range ctxs {
		if cap(c.prof) < n {
			c.prof = make([]ruleAcc, n)
		} else {
			c.prof = c.prof[:n]
			clear(c.prof)
		}
	}
}

// absorbRuleProf folds the worker contexts' profiling accumulators into
// the runtime's transaction accumulator after the fan-out barrier.
func (rt *Runtime) absorbRuleProf(ctxs []*evalCtx) {
	if rt.ruleProf == nil {
		return
	}
	for _, c := range ctxs {
		for i := range c.prof {
			a := c.prof[i]
			if a == (ruleAcc{}) {
				continue
			}
			t := &rt.ruleProf[i]
			t.ns += a.ns
			t.seedings += a.seedings
			t.derivs += a.derivs
			t.delta += a.delta
		}
		// Keep the capacity for the pool but leave the slice empty so a
		// profiling-off runtime sharing the pool sees no accumulator.
		c.prof = c.prof[:0]
	}
}

// attachProvJournal points pooled worker contexts at their private
// journals before a fan-out (no-op when provenance is off).
func (rt *Runtime) attachProvJournal(ctxs []*evalCtx) {
	if rt.prov == nil {
		return
	}
	for _, c := range ctxs {
		c.journal = &c.priv
	}
}

// absorbProvJournals splices the worker contexts' journals into the
// store's journal. Runs on the apply goroutine after the fan-out barrier,
// so worker-recorded derivations replay before any drops the subsequent
// sequential merge produces.
func (rt *Runtime) absorbProvJournals(ctxs []*evalCtx) {
	if rt.prov == nil {
		return
	}
	for _, c := range ctxs {
		rt.prov.j.absorb(&c.priv)
		c.journal = nil
	}
}

// envFor returns a zeroed environment of at least size n backed by the
// context's scratch slice. Plan execution is not re-entrant per context.
func (c *evalCtx) envFor(n int) []value.Value {
	if cap(c.env) < n {
		c.env = make([]value.Value, n)
	}
	env := c.env[:n]
	for i := range env {
		env[i] = value.Value{}
	}
	return env
}

var ctxPool = sync.Pool{New: func() any { return new(evalCtx) }}

// parallelism decides how many workers to use for n independent jobs;
// values <= 1 mean "run sequentially".
func (rt *Runtime) parallelism(n int) int {
	w := rt.opts.Workers
	if w <= 1 || n < minParallelJobs {
		return 1
	}
	if w > n {
		w = n
	}
	return w
}

// countDerivationAtomic is countDerivation for worker goroutines.
func (rt *Runtime) countDerivationAtomic() error {
	n := atomic.AddInt64(&rt.derivations, 1)
	if rt.opts.MaxDerivationsPerTxn > 0 && n > int64(rt.opts.MaxDerivationsPerTxn) {
		return fmt.Errorf("engine: transaction exceeded %d derivations (divergent recursion?)",
			rt.opts.MaxDerivationsPerTxn)
	}
	return nil
}

// runWorkers runs fn on nw goroutines, handing out job indexes from a
// shared atomic counter (cheap work stealing), and returns the first error
// by worker index.
func runWorkers(nw, njobs int, fn func(worker int, job int) error) error {
	var next int64
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for wi := 0; wi < nw; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= njobs {
					return
				}
				if err := fn(wi, i); err != nil {
					errs[wi] = err
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// evalJobsZSet evaluates jobs across nw workers, each accumulating head
// contributions into a private Z-set. The caller merges the returned
// Z-sets sequentially.
func (rt *Runtime) evalJobsZSet(jobs []seedJob, nw int) ([]*zset.ZSet, error) {
	outs := make([]*zset.ZSet, nw)
	ctxs := make([]*evalCtx, nw)
	emits := make([]emitFunc, nw)
	for wi := 0; wi < nw; wi++ {
		out := zset.New()
		outs[wi] = out
		ctxs[wi] = ctxPool.Get().(*evalCtx)
		emits[wi] = func(rec value.Record, key string, _ uint64, w int64) error {
			if err := rt.countDerivationAtomic(); err != nil {
				return err
			}
			out.AddKeyed(rec, key, w)
			return nil
		}
	}
	rt.attachProvJournal(ctxs)
	rt.attachRuleProf(ctxs)
	err := runWorkers(nw, len(jobs), rt.instrument(func(wi, i int) error {
		j := jobs[i]
		return rt.runPlan(ctxs[wi], j.p, j.seed, j.key, j.w, j.mode, emits[wi])
	}))
	rt.absorbProvJournals(ctxs)
	rt.absorbRuleProf(ctxs)
	for _, c := range ctxs {
		ctxPool.Put(c)
	}
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// evalJobsCollect evaluates jobs and returns every head contribution as a
// flat candidate list (recursive strata; weights carry no information
// there). Order is nondeterministic; the sequential merge dedupes.
func (rt *Runtime) evalJobsCollect(jobs []seedJob) ([]cand, error) {
	nw := rt.parallelism(len(jobs))
	if nw <= 1 {
		var out []cand
		for _, j := range jobs {
			head := j.head
			ruleIdx := j.p.rule.idx
			err := rt.runPlan(&rt.seqCtx, j.p, j.seed, j.key, j.w, j.mode,
				func(rec value.Record, key string, _ uint64, _ int64) error {
					if err := rt.countDerivation(); err != nil {
						return err
					}
					out = append(out, cand{rel: head, rec: rec, key: key, ruleIdx: ruleIdx})
					return nil
				})
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	outs := make([][]cand, nw)
	ctxs := make([]*evalCtx, nw)
	for wi := 0; wi < nw; wi++ {
		ctxs[wi] = ctxPool.Get().(*evalCtx)
	}
	rt.attachProvJournal(ctxs)
	rt.attachRuleProf(ctxs)
	err := runWorkers(nw, len(jobs), rt.instrument(func(wi, i int) error {
		j := jobs[i]
		return rt.runPlan(ctxs[wi], j.p, j.seed, j.key, j.w, j.mode,
			func(rec value.Record, key string, _ uint64, _ int64) error {
				if err := rt.countDerivationAtomic(); err != nil {
					return err
				}
				outs[wi] = append(outs[wi], cand{rel: j.head, rec: rec, key: key, ruleIdx: j.p.rule.idx})
				return nil
			})
	}))
	rt.absorbProvJournals(ctxs)
	rt.absorbRuleProf(ctxs)
	for _, c := range ctxs {
		ctxPool.Put(c)
	}
	if err != nil {
		return nil, err
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	merged := make([]cand, 0, total)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged, nil
}

// checkJob asks whether an overdeleted tuple is still derivable.
type checkJob struct {
	rs  *relState
	rec value.Record
	key string
}

// runCheckJobs runs rederivation checks (read-only) in parallel and
// reports, per job, the profiling index of the rule that rederives the
// tuple (-1 when no rule does).
func (rt *Runtime) runCheckJobs(jobs []checkJob) ([]int, error) {
	res := make([]int, len(jobs))
	check := func(ctx *evalCtx, i int) error {
		cj := jobs[i]
		res[i] = -1
		for _, cr := range rt.rulesByHead[cj.rs] {
			if cr.checkPlan == nil {
				continue
			}
			ok, err := rt.runCheckPlan(ctx, cr, cj.rec)
			if err != nil {
				return err
			}
			if ok {
				res[i] = cr.idx
				return nil
			}
		}
		return nil
	}
	nw := rt.parallelism(len(jobs))
	if nw <= 1 {
		for i := range jobs {
			if err := check(&rt.seqCtx, i); err != nil {
				return nil, err
			}
		}
		return res, nil
	}
	ctxs := make([]*evalCtx, nw)
	for wi := 0; wi < nw; wi++ {
		ctxs[wi] = ctxPool.Get().(*evalCtx)
	}
	rt.attachProvJournal(ctxs)
	rt.attachRuleProf(ctxs)
	err := runWorkers(nw, len(jobs), rt.instrument(func(wi, i int) error { return check(ctxs[wi], i) }))
	rt.absorbProvJournals(ctxs)
	rt.absorbRuleProf(ctxs)
	for _, c := range ctxs {
		ctxPool.Put(c)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// gatherRecursiveSeeds collects the context-delta seedings of a recursive
// stratum: deletions feeding the overdelete phase (insert=false, evaluated
// against the old view) or insertions feeding the semi-naive insertion
// phase (insert=true, new view).
func (rt *Runtime) gatherRecursiveSeeds(inStratum map[*relState]bool, stratumRules []*compiledRule, insert, initial bool) []seedJob {
	var jobs []seedJob
	mode := viewAllOld
	if insert {
		mode = viewAllNew
	}
	for _, cr := range stratumRules {
		if insert && initial && cr.unitPlan != nil {
			jobs = append(jobs, seedJob{p: cr.unitPlan, w: 1, mode: viewAllNew, head: cr.head})
		}
		for idx, p := range cr.plansByBody {
			if p == nil {
				continue
			}
			lit := cr.body[idx].(*typecheck.LiteralTerm)
			litRel := rt.relStateOf(lit.Rel)
			if inStratum[litRel] || litRel.txnDelta.IsEmpty() {
				continue
			}
			if lit.Negated {
				for _, tr := range rt.negTransitions(lit) {
					if (insert && tr.factor > 0) || (!insert && tr.factor < 0) {
						jobs = append(jobs, seedJob{p: p, seed: tr.keyRec, w: 1, mode: mode, head: cr.head})
					}
				}
				continue
			}
			cr := cr
			p := p
			litRel.txnDelta.Each(func(rec value.Record, w int64) {
				if (insert && w > 0) || (!insert && w < 0) {
					jobs = append(jobs, seedJob{p: p, seed: rec, w: 1, mode: mode, head: cr.head})
				}
			})
		}
	}
	return jobs
}

// appendCascadeJobs appends, for every in-stratum positive occurrence of
// rs, the plan seeding that propagates rec one step further.
func (rt *Runtime) appendCascadeJobs(jobs []seedJob, inStratum map[*relState]bool, rs *relState, rec value.Record, mode viewMode) []seedJob {
	for _, occ := range rt.occsByRel[rs.id] {
		if !inStratum[occ.rule.head] {
			continue
		}
		lit := occ.rule.body[occ.bodyIdx].(*typecheck.LiteralTerm)
		if lit.Negated {
			continue // in-stratum negation is impossible (stratified)
		}
		jobs = append(jobs, seedJob{
			p:    occ.rule.plansByBody[occ.bodyIdx],
			seed: rec,
			w:    1,
			mode: mode,
			head: occ.rule.head,
		})
	}
	return jobs
}

// runRecursiveStratumParallel is the Workers>1 form of DRed + semi-naive
// insertion. Each cascade becomes breadth-first rounds: the whole frontier
// is evaluated read-only (in parallel for large rounds), then consequences
// are applied sequentially and the next frontier built. This reaches the
// same fixpoint as the sequential LIFO cascade: every rule's in-stratum
// body literals all have plans, and a joint derivation through tuples
// inserted in different rounds is produced by the cascade of whichever
// tuple was inserted last.
func (rt *Runtime) runRecursiveStratumParallel(inStratum map[*relState]bool, stratumRules []*compiledRule, initial bool) error {
	od := make(map[*relState]map[string]value.Record)
	odBudget := -1
	if f := rt.opts.RecursiveDeleteFallback; f > 0 && !initial {
		size := 0
		for rs := range inStratum {
			size += len(rs.counts)
		}
		odBudget = int(f * float64(size))
	}
	odTotal := 0

	if !initial {
		// ---- Phase 1: overdelete (old view is frozen; evaluation is pure) ----
		frontier := rt.gatherRecursiveSeeds(inStratum, stratumRules, false, initial)
		fallback := false
		for len(frontier) > 0 && !fallback {
			if rt.stats != nil {
				rt.statRounds++
				rt.statJobs += len(frontier)
			}
			rt.profRound(frontier)
			cands, err := rt.evalJobsCollect(frontier)
			if err != nil {
				return err
			}
			var next []seedJob
			for _, c := range cands {
				if !c.rel.present(c.key) {
					continue
				}
				m := od[c.rel]
				if m == nil {
					m = make(map[string]value.Record)
					od[c.rel] = m
				}
				if _, dup := m[c.key]; dup {
					continue
				}
				m[c.key] = c.rec
				odTotal++
				if rt.ruleProf != nil {
					rt.ruleProf[c.ruleIdx].delta++
				}
				if odBudget >= 0 && odTotal > odBudget {
					fallback = true
					break
				}
				next = rt.appendCascadeJobs(next, inStratum, c.rel, c.rec, viewAllOld)
			}
			frontier = next
		}
		if fallback {
			return rt.recomputeStratum(inStratum, stratumRules)
		}
		// ---- Phase 2: apply overdeletions ----
		for rs, m := range od {
			for key, rec := range m {
				rs.setAbsent(rec, key)
			}
		}
	}

	// ---- Phase 3: rederive overdeleted candidates, then insert ----
	var frontier []seedJob
	if len(od) > 0 {
		var checks []checkJob
		for rs, m := range od {
			for key, rec := range m {
				checks = append(checks, checkJob{rs: rs, rec: rec, key: key})
			}
		}
		ok, err := rt.runCheckJobs(checks)
		if err != nil {
			return err
		}
		for i, cj := range checks {
			if ok[i] >= 0 && cj.rs.setPresent(cj.rec, cj.key) {
				if rt.ruleProf != nil {
					// The rederiving rule re-inserts the tuple.
					rt.ruleProf[ok[i]].delta++
				}
				frontier = rt.appendCascadeJobs(frontier, inStratum, cj.rs, cj.rec, viewAllNew)
			}
		}
	}
	frontier = append(frontier, rt.gatherRecursiveSeeds(inStratum, stratumRules, true, initial)...)
	for len(frontier) > 0 {
		if rt.stats != nil {
			rt.statRounds++
			rt.statJobs += len(frontier)
		}
		rt.profRound(frontier)
		cands, err := rt.evalJobsCollect(frontier)
		if err != nil {
			return err
		}
		var next []seedJob
		for _, c := range cands {
			if c.rel.setPresent(c.rec, c.key) {
				if rt.ruleProf != nil {
					rt.ruleProf[c.ruleIdx].delta++
				}
				next = rt.appendCascadeJobs(next, inStratum, c.rel, c.rec, viewAllNew)
			}
		}
		frontier = next
	}
	return nil
}
