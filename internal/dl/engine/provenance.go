package engine

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/dl/typecheck"
	"repro/internal/dl/value"
)

// This file implements the provenance layer: an optional record of *why*
// each derived fact exists — per derivation, the rule and the input facts
// that produced it. It is gated exactly like CollectStats: when
// Options.CollectProvenance is off the hot path carries only a single
// boolean write per plan run and stays allocation-free
// (TestProvenanceOffZeroAlloc). When on, every emit records (or, for
// retractions, unrecords) a derivation into a bounded, mutex-guarded
// store keyed by (relation, record key).
//
// Correctness under the engine's evaluation modes:
//
//   - Counting strata: insertions (w>0) record, retractions (w<0)
//     unrecord. A derivation's identity (sig) is its rule label plus the
//     *sorted* input record keys, so the seeding plan used to produce or
//     retract it is irrelevant — the retraction emitted by any seeding of
//     a rule removes the derivation the matching insertion recorded.
//   - DRed (recursive strata): the overdelete phase runs with viewAllOld
//     and captures nothing; applying the overdeletions drops each
//     retracted fact's provenance wholesale (relState.noteRemove →
//     provStore.drop). Rederivation runs check plans under viewAllNew
//     with capture on, so a surviving fact's provenance is rebuilt from
//     its post-deletion proof. RecursiveDeleteFallback's recomputeStratum
//     behaves identically: setAbsent drops, re-insertion re-records.
//   - Workers > 1: recording happens inside worker emit paths under the
//     store mutex; sig-based identity makes record/unrecord order across
//     workers irrelevant.
//
// The store is bounded (ProvenanceCapacity facts, FIFO eviction;
// maxDerivationsPerFact alternates per fact) and Explain reads only the
// store under its mutex — never relation state — so explaining while a
// transaction applies is race-free by construction.

// DefaultProvenanceCapacity bounds the store when
// Options.ProvenanceCapacity is zero.
const DefaultProvenanceCapacity = 1 << 16

// maxDerivationsPerFact caps the alternate derivations retained per fact;
// additional ones are counted as dropped rather than stored.
const maxDerivationsPerFact = 8

// maxAggProvInputs caps the group members recorded as an aggregate
// derivation's inputs (the whole group is the true input set; huge groups
// are truncated and flagged).
const maxAggProvInputs = 64

// Explain tree bounds used when ExplainOptions leaves them zero.
const (
	DefaultExplainDepth = 64
	DefaultExplainNodes = 1024
)

// provInput is one body fact on an evaluation context's capture trail.
type provInput struct {
	rs  *relState
	rec value.Record
}

// factRef identifies one input fact of a recorded derivation.
type factRef struct {
	rel int
	rec value.Record
	key string
}

// derivation is one recorded way a fact was produced.
type derivation struct {
	label     string
	stratum   int
	inputs    []factRef
	sig       string
	truncated bool
}

type provKey struct {
	rel int
	key string
}

type factProv struct {
	rec    value.Record
	derivs []*derivation
}

// provStore is the bounded, concurrency-safe provenance store.
type provStore struct {
	mu       sync.Mutex
	capacity int
	facts    map[provKey]*factProv
	// order is the FIFO insertion order used for eviction; it may hold
	// keys already dropped (tombstones), compacted when it outgrows the
	// live set.
	order         []provKey
	evictions     uint64
	droppedDerivs uint64
}

func newProvStore(capacity int) *provStore {
	if capacity <= 0 {
		capacity = DefaultProvenanceCapacity
	}
	return &provStore{capacity: capacity, facts: make(map[provKey]*factProv)}
}

// derivationSig is a derivation's identity: rule label plus sorted input
// keys. Sorting makes the identity independent of which body literal
// seeded the plan that produced (or retracts) the derivation.
func derivationSig(label string, inputs []factRef) string {
	parts := make([]string, len(inputs))
	var sb strings.Builder
	for i, in := range inputs {
		sb.Reset()
		sb.Grow(len(in.key) + 4)
		for _, b := range []byte{byte(in.rel >> 8), byte(in.rel)} {
			sb.WriteByte(b)
		}
		sb.WriteString(in.key)
		parts[i] = sb.String()
	}
	sort.Strings(parts)
	return label + "\x01" + strings.Join(parts, "\x01")
}

func trailToInputs(trail []provInput) []factRef {
	if len(trail) == 0 {
		return nil
	}
	inputs := make([]factRef, len(trail))
	for i, t := range trail {
		inputs[i] = factRef{rel: t.rs.id, rec: t.rec, key: t.rec.Key()}
	}
	return inputs
}

// record adds one derivation of (head, rec); duplicates (same sig) are
// collapsed.
func (ps *provStore) record(head *relState, rec value.Record, key, label string, stratum int, trail []provInput, truncated bool) {
	inputs := trailToInputs(trail)
	sig := derivationSig(label, inputs)
	pk := provKey{rel: head.id, key: key}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	fp := ps.facts[pk]
	if fp == nil {
		ps.evictLocked()
		fp = &factProv{rec: rec}
		ps.facts[pk] = fp
		ps.order = append(ps.order, pk)
		ps.compactLocked()
	}
	for _, d := range fp.derivs {
		if d.sig == sig {
			return
		}
	}
	if len(fp.derivs) >= maxDerivationsPerFact {
		ps.droppedDerivs++
		return
	}
	fp.derivs = append(fp.derivs, &derivation{
		label: label, stratum: stratum, inputs: inputs, sig: sig, truncated: truncated,
	})
}

// unrecord removes the derivation of (head, key) matching the retraction's
// rule and inputs, if recorded.
func (ps *provStore) unrecord(head *relState, key, label string, trail []provInput) {
	sig := derivationSig(label, trailToInputs(trail))
	ps.mu.Lock()
	defer ps.mu.Unlock()
	fp := ps.facts[provKey{rel: head.id, key: key}]
	if fp == nil {
		return
	}
	for i, d := range fp.derivs {
		if d.sig == sig {
			fp.derivs = append(fp.derivs[:i], fp.derivs[i+1:]...)
			return
		}
	}
}

// unrecordByLabel removes every derivation of (head, key) recorded under
// label, regardless of inputs (aggregate re-derivations replace the whole
// group's contribution).
func (ps *provStore) unrecordByLabel(head *relState, key, label string) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	fp := ps.facts[provKey{rel: head.id, key: key}]
	if fp == nil {
		return
	}
	kept := fp.derivs[:0]
	for _, d := range fp.derivs {
		if d.label != label {
			kept = append(kept, d)
		}
	}
	fp.derivs = kept
}

// drop discards all provenance of one fact (called when the fact is
// retracted from its relation).
func (ps *provStore) drop(relID int, recKey string) {
	ps.mu.Lock()
	delete(ps.facts, provKey{rel: relID, key: recKey})
	ps.mu.Unlock()
}

// evictLocked makes room for one more fact by evicting in FIFO order.
func (ps *provStore) evictLocked() {
	for len(ps.facts) >= ps.capacity && len(ps.order) > 0 {
		pk := ps.order[0]
		ps.order = ps.order[1:]
		if _, ok := ps.facts[pk]; ok {
			delete(ps.facts, pk)
			ps.evictions++
		}
	}
}

// compactLocked rebuilds order without tombstones once they dominate.
func (ps *provStore) compactLocked() {
	if len(ps.order) <= 2*ps.capacity {
		return
	}
	kept := make([]provKey, 0, len(ps.facts))
	for _, pk := range ps.order {
		if _, ok := ps.facts[pk]; ok {
			kept = append(kept, pk)
		}
	}
	ps.order = kept
}

// ProvenanceStats summarizes the provenance store.
type ProvenanceStats struct {
	// Facts is the number of facts with recorded provenance.
	Facts int
	// Evictions counts facts discarded by the capacity bound.
	Evictions uint64
	// DroppedDerivations counts alternate derivations discarded by the
	// per-fact bound.
	DroppedDerivations uint64
}

// ProvenanceEnabled reports whether the runtime collects provenance.
func (rt *Runtime) ProvenanceEnabled() bool { return rt.prov != nil }

// ProvenanceStats reports provenance store statistics (zero when
// collection is off).
func (rt *Runtime) ProvenanceStats() ProvenanceStats {
	if rt.prov == nil {
		return ProvenanceStats{}
	}
	rt.prov.mu.Lock()
	defer rt.prov.mu.Unlock()
	return ProvenanceStats{
		Facts:              len(rt.prov.facts),
		Evictions:          rt.prov.evictions,
		DroppedDerivations: rt.prov.droppedDerivs,
	}
}

// ExplainOptions bound a derivation tree; zero values select the
// defaults.
type ExplainOptions struct {
	MaxDepth int
	MaxNodes int
}

// ExplainNode is one node of a derivation tree.
type ExplainNode struct {
	Relation string `json:"relation"`
	Record   string `json:"record"`
	// Kind is "derived" (a rule produced it; Rule/Children say how),
	// "input" (externally fed), "unknown" (the fact was an input to a
	// recorded derivation but its own provenance is gone — evicted or
	// never recorded), or "cycle" (already expanded on this path).
	Kind    string `json:"kind"`
	Rule    string `json:"rule,omitempty"`
	Stratum int    `json:"stratum,omitempty"`
	// TxnID is filled by layers that know transaction identity (the
	// controller annotates input leaves with the OVSDB txn that inserted
	// the row); the engine never sets it.
	TxnID uint64 `json:"txn_id,omitempty"`
	// Alternatives counts additional recorded derivations not expanded.
	Alternatives int `json:"alternatives,omitempty"`
	// Truncated marks nodes cut short by the depth/node budget or by the
	// aggregate input cap.
	Truncated bool           `json:"truncated,omitempty"`
	Children  []*ExplainNode `json:"children,omitempty"`

	// Tuple and RecordKey carry the fact itself for in-process callers
	// (tests, the controller's txn annotation); not serialized.
	Tuple     value.Record `json:"-"`
	RecordKey string       `json:"-"`
}

// Explain returns the derivation tree of rec in a derived relation. ok is
// false when provenance is off, the relation is unknown, hidden, or an
// input, or the fact has no recorded provenance (never derived,
// retracted, or evicted). It reads only the provenance store, so it is
// safe to call concurrently with Apply.
func (rt *Runtime) Explain(relation string, rec value.Record, opt ExplainOptions) (*ExplainNode, bool) {
	rs := rt.relByName[relation]
	if rt.prov == nil || rs == nil || rs.hidden || rs.isInput() {
		return nil, false
	}
	return rt.prov.explain(rt, rs, rec.Key(), opt)
}

// ExplainRendered is Explain keyed by the record's String() rendering —
// the operator-facing form the /debug/explain endpoint receives. The
// store is scanned linearly under its lock; acceptable for a debug query.
func (rt *Runtime) ExplainRendered(relation, rendered string, opt ExplainOptions) (*ExplainNode, bool) {
	rs := rt.relByName[relation]
	if rt.prov == nil || rs == nil || rs.hidden || rs.isInput() {
		return nil, false
	}
	rt.prov.mu.Lock()
	key := ""
	found := false
	for pk, fp := range rt.prov.facts {
		if pk.rel == rs.id && fp.rec.String() == rendered {
			key, found = pk.key, true
			break
		}
	}
	rt.prov.mu.Unlock()
	if !found {
		return nil, false
	}
	return rt.prov.explain(rt, rs, key, opt)
}

func (ps *provStore) explain(rt *Runtime, rs *relState, key string, opt ExplainOptions) (*ExplainNode, bool) {
	depth, nodes := opt.MaxDepth, opt.MaxNodes
	if depth <= 0 {
		depth = DefaultExplainDepth
	}
	if nodes <= 0 {
		nodes = DefaultExplainNodes
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	pk := provKey{rel: rs.id, key: key}
	fp := ps.facts[pk]
	if fp == nil || len(fp.derivs) == 0 {
		return nil, false
	}
	budget := nodes
	path := make(map[provKey]bool)
	return ps.nodeLocked(rt, pk, fp.rec, depth, &budget, path), true
}

// nodeLocked builds the tree node for one fact (store mutex held).
func (ps *provStore) nodeLocked(rt *Runtime, pk provKey, rec value.Record, depth int, budget *int, path map[provKey]bool) *ExplainNode {
	*budget--
	rs := rt.rels[pk.rel]
	n := &ExplainNode{
		Relation:  rs.rel.Name,
		Record:    rec.String(),
		Tuple:     rec,
		RecordKey: pk.key,
	}
	if rs.isInput() {
		n.Kind = "input"
		return n
	}
	fp := ps.facts[pk]
	if fp == nil || len(fp.derivs) == 0 {
		n.Kind = "unknown"
		return n
	}
	n.Kind = "derived"
	// Prefer a derivation that does not revisit a fact already being
	// expanded on this path (recursive strata can record cyclic
	// alternates).
	d := fp.derivs[0]
	for _, cand := range fp.derivs {
		revisits := false
		for _, in := range cand.inputs {
			if path[provKey{rel: in.rel, key: in.key}] {
				revisits = true
				break
			}
		}
		if !revisits {
			d = cand
			break
		}
	}
	n.Rule = d.label
	n.Stratum = d.stratum
	n.Alternatives = len(fp.derivs) - 1
	n.Truncated = d.truncated
	if depth <= 0 {
		if len(d.inputs) > 0 {
			n.Truncated = true
		}
		return n
	}
	path[pk] = true
	for _, in := range d.inputs {
		if *budget <= 0 {
			n.Truncated = true
			break
		}
		cpk := provKey{rel: in.rel, key: in.key}
		if path[cpk] {
			*budget--
			n.Children = append(n.Children, &ExplainNode{
				Relation:  rt.rels[in.rel].rel.Name,
				Record:    in.rec.String(),
				Kind:      "cycle",
				Tuple:     in.rec,
				RecordKey: in.key,
			})
			continue
		}
		n.Children = append(n.Children, ps.nodeLocked(rt, cpk, in.rec, depth-1, budget, path))
	}
	delete(path, pk)
	return n
}

// recordProv records (w>0) or retracts (w<0) one derivation at plan emit
// time. Called only when the emitting context has capture on.
func (rt *Runtime) recordProv(cr *compiledRule, rec value.Record, key string, w int64, trail []provInput) {
	if w > 0 {
		rt.prov.record(cr.head, rec, key, cr.label, cr.head.stratum, trail, false)
	} else if w < 0 {
		rt.prov.unrecord(cr.head, key, cr.label, trail)
	}
}

// recordAggProv records an aggregate head fact with its (capped) group
// bucket as the input set.
func (rt *Runtime) recordAggProv(spec *aggSpec, keyEnc []byte, rec value.Record, key string) {
	var trail []provInput
	truncated := false
	spec.groupRel.iterBucket(spec.keyIx, keyEnc, false, func(grec value.Record) bool {
		if len(trail) >= maxAggProvInputs {
			truncated = true
			return false
		}
		trail = append(trail, provInput{rs: spec.groupRel, rec: grec})
		return true
	})
	rt.prov.record(spec.head, rec, key, spec.label, spec.head.stratum, trail, truncated)
}

// ruleLabel renders a compact operator-facing identity for a compiled
// rule: the head name and the body literal shapes.
func ruleLabel(cr *compiledRule) string {
	var sb strings.Builder
	sb.WriteString(cr.head.rel.Name)
	sb.WriteString(" :- ")
	wrote := false
	nonLit := false
	for _, term := range cr.body {
		lit, ok := term.(*typecheck.LiteralTerm)
		if !ok {
			nonLit = true
			continue
		}
		if wrote {
			sb.WriteString(", ")
		}
		wrote = true
		if lit.Negated {
			sb.WriteString("not ")
		}
		sb.WriteString(lit.Rel.Name)
		sb.WriteString("(..)")
	}
	if nonLit {
		if wrote {
			sb.WriteString(", ")
		}
		sb.WriteString("..")
		wrote = true
	}
	if !wrote {
		sb.WriteString("<fact>")
	}
	return sb.String()
}
