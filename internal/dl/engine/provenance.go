package engine

import (
	"hash/maphash"
	"strings"
	"sync"

	"repro/internal/dl/typecheck"
	"repro/internal/dl/value"
)

// This file implements the provenance layer: an optional record of *why*
// each derived fact exists — per derivation, the rule and the input facts
// that produced it. It is gated exactly like CollectStats: when
// Options.CollectProvenance is off the hot path carries only a single
// boolean write per plan run and stays allocation-free
// (TestProvenanceOffZeroAlloc).
//
// When on, emits do not touch the store directly. Every record, retract,
// and drop is appended to a lock-free per-goroutine journal and the whole
// journal is replayed into the store under one mutex acquisition at the
// end of Apply. Buffering keeps the per-emit cost to a signature hash and
// a slice append, makes a transaction's provenance visible atomically,
// and lets the replay use a single-writer open-addressing table and
// store-local freelists instead of per-op locked map and sync.Pool
// traffic.
//
// Correctness under the engine's evaluation modes:
//
//   - Counting strata: insertions (w>0) journal a record, retractions
//     (w<0) journal an unrecord. A derivation's identity (sig) is an
//     order-independent hash of its rule label and input facts, so the
//     seeding plan used to produce or retract it is irrelevant — the
//     retraction emitted by any seeding of a rule removes the derivation
//     the matching insertion recorded. Unrecords replay after all other
//     ops, and a per-derivation sequence number makes them skip
//     derivations re-recorded after the retraction was journaled; facts
//     dropped wholesale in the same transaction are simply absent by
//     then, so their unrecords never pay the derivation-matching scan.
//   - DRed (recursive strata): the overdelete phase runs with viewAllOld
//     and captures nothing; applying the overdeletions drops each
//     retracted fact's provenance wholesale (relState.noteRemove →
//     journal drop). Rederivation runs check plans under viewAllNew with
//     capture on, so a surviving fact's provenance is rebuilt from its
//     post-deletion proof. RecursiveDeleteFallback's recomputeStratum
//     behaves identically: setAbsent drops, re-insertion re-records.
//   - Workers > 1: each worker journals into its own context; the
//     barrier at the end of each fan-out absorbs worker journals into
//     the store's journal before the sequential merge applies counts, so
//     records always replay before the drops they may precede. Cross-
//     worker op order is arbitrary, exactly as the per-op mutex
//     interleaving was.
//
// The store is bounded (ProvenanceCapacity facts, FIFO eviction;
// maxDerivationsPerFact alternates per fact) and Explain reads only the
// store under its mutex — never relation state, never the journal — so
// explaining while a transaction applies is race-free by construction.

// DefaultProvenanceCapacity bounds the store when
// Options.ProvenanceCapacity is zero.
const DefaultProvenanceCapacity = 1 << 16

// maxDerivationsPerFact caps the alternate derivations retained per fact;
// additional ones are counted as dropped rather than stored.
const maxDerivationsPerFact = 8

// maxAggProvInputs caps the group members recorded as an aggregate
// derivation's inputs (the whole group is the true input set; huge groups
// are truncated and flagged).
const maxAggProvInputs = 64

// Explain tree bounds used when ExplainOptions leaves them zero.
const (
	DefaultExplainDepth = 64
	DefaultExplainNodes = 1024
)

// provInput is one body fact on an evaluation context's capture trail.
// key is the fact's canonical record key when the pushing site had it at
// hand (join steps read it off the arrangement bucket); empty otherwise.
// hash caches the fact's identity hash (see inputHash). Join steps fill
// it straight from the arrangement bucket's cached key hash, so the
// common case never hashes at all; entries pushed without it (plan
// seeds) compute it lazily at the first emit that includes the fact.
// Zero means "not yet computed" (a real zero hash merely recomputes —
// harmless).
type provInput struct {
	rs   *relState
	rec  value.Record
	key  string
	hash uint64
}

// factRef identifies one input fact of a recorded derivation. The input's
// canonical key is recomputed lazily at explain time rather than stored:
// materializing it on the record path would cost one string allocation per
// input per emit.
type factRef struct {
	rel int
	rec value.Record
}

// derivation is one recorded way a fact was produced. sig is the
// order-independent 64-bit identity hash (rule label plus input facts);
// seq is the store-global sequence at the last (re-)record, used by the
// unrecord replay to avoid removing a derivation re-recorded after its
// retraction was journaled. Derivations live by value in their fact's
// slice (their inputs backing arrays recycle through the store), so the
// store's live-object population — what every GC mark phase must walk —
// stays proportional to facts, not derivations.
type derivation struct {
	label     string
	stratum   int32
	truncated bool
	inputs    []factRef
	sig       uint64
	seq       uint64
}

// factProv is one fact's recorded provenance. digest is the facts-table
// key (see provDigest); rel identifies the fact's relation for the
// explain paths; prev/next link the store's FIFO eviction list. dead
// marks a dropped fact left in place as a tombstone: steady-state churn
// (the same fact retracted and re-derived across transactions) then
// skips the table delete, backward shift, and re-insertion — a drop
// wipes the derivations and flips the flag, and the next record of the
// same digest revives the container where it sits. Readers treat dead
// facts as absent; eviction reclaims them in FIFO order like any other.
// Facts live in the store's arena slab and are addressed by index;
// prev/next are arena indices (provNil when absent). Pointers into the
// arena must not be held across a possible arena append.
type factProv struct {
	rec        value.Record
	derivs     []derivation
	digest     uint64
	rel        int32
	dead       bool
	prev, next int32
}

// provNil is the arena-index null.
const provNil = int32(-1)

// provOp kinds (provOp.kind).
const (
	opRecord = iota
	opUnrec
	opDrop
	opUnrecLabel
)

// provOp is one journaled store mutation. Record ops reference their
// input facts as a [refLo, refHi) window of the journal's shared refs
// arena, so buffering an op never allocates once the journal is warm.
type provOp struct {
	kind         uint8
	truncated    bool
	stratum      int32
	rel          int32
	refLo, refHi int32
	sig          uint64
	// dg is the fact's digest (provDigest), computed where the key hash
	// was already at hand — emit sites hash the freshly built head key
	// once, drops reuse the count entry's cached hash — so the flush
	// replay performs no hashing at all.
	dg    uint64
	label string
	rec   value.Record
}

// provJournal buffers one goroutine's provenance ops for the
// end-of-transaction replay. The store owns the apply goroutine's
// journal; worker contexts buffer into private journals that the join
// barrier absorbs (parallel.go).
type provJournal struct {
	ops  []provOp
	refs []factRef
}

func (j *provJournal) record(dg uint64, rel int, rec value.Record, sig uint64, label string, stratum int, trail []provInput, truncated bool) {
	lo := int32(len(j.refs))
	for i := range trail {
		t := &trail[i]
		j.refs = append(j.refs, factRef{rel: t.rs.id, rec: t.rec})
	}
	j.ops = append(j.ops, provOp{
		kind: opRecord, truncated: truncated,
		stratum: int32(stratum), rel: int32(rel),
		refLo: lo, refHi: int32(len(j.refs)),
		sig: sig, dg: dg, label: label, rec: rec,
	})
}

func (j *provJournal) unrecord(dg, sig uint64) {
	j.ops = append(j.ops, provOp{kind: opUnrec, dg: dg, sig: sig})
}

func (j *provJournal) drop(dg uint64) {
	j.ops = append(j.ops, provOp{kind: opDrop, dg: dg})
}

func (j *provJournal) unrecordByLabel(dg uint64, label string) {
	j.ops = append(j.ops, provOp{kind: opUnrecLabel, dg: dg, label: label})
}

// reset empties the journal for the next transaction, retaining capacity.
// Slots are not cleared: the next transaction overwrites them before any
// replay reads them, and the record/string references they pin are (at
// most) one transaction's worth of already-retired facts.
func (j *provJournal) reset() {
	j.ops = j.ops[:0]
	j.refs = j.refs[:0]
}

// absorb splices a worker journal's ops after this journal's, rebasing
// record ref windows into the shared arena, and resets the worker
// journal. Called on the apply goroutine after the fan-out barrier.
func (j *provJournal) absorb(w *provJournal) {
	if len(w.ops) == 0 {
		return
	}
	base := int32(len(j.refs))
	j.refs = append(j.refs, w.refs...)
	for _, op := range w.ops {
		op.refLo += base
		op.refHi += base
		j.ops = append(j.ops, op)
	}
	w.reset()
}

// provSlot is one open-addressing table slot; ref is the fact's arena
// index plus one, so the zero value marks an empty slot. Slots carry no
// pointers: the whole table is skipped by the garbage collector's mark
// phase instead of being scanned slot by slot.
type provSlot struct {
	digest uint64
	ref    int32
}

// provTable maps fact digests to arena indices by linear probing.
// Digests are already uniform 64-bit hashes (provDigest), so the slot
// index is just the digest's low bits; deletion backward-shifts the probe
// cluster, so there are no tombstones and lookups never degrade. It
// replaces a built-in map on the replay path: inserts, hits, misses, and
// deletes are each a couple of cache lines with no hashing or bucket
// machinery.
type provTable struct {
	slots []provSlot // len is a power of two
	n     int
}

// get returns the arena index for dg, or provNil.
func (t *provTable) get(dg uint64) int32 {
	if len(t.slots) == 0 {
		return provNil
	}
	mask := uint64(len(t.slots) - 1)
	for i := dg & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.ref == 0 {
			return provNil
		}
		if s.digest == dg {
			return s.ref - 1
		}
	}
}

// getOrInsert returns the arena index for dg, or claims the probe's empty
// slot with mk() on a miss — one probe sequence where get-then-put would
// walk the cluster twice. mk must not mutate the table (it may grow the
// arena the indices point into).
func (t *provTable) getOrInsert(dg uint64, mk func() int32) int32 {
	if (t.n+1)*3 >= len(t.slots)*2 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := dg & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.ref == 0 {
			ref := mk()
			s.digest, s.ref = dg, ref+1
			t.n++
			return ref
		}
		if s.digest == dg {
			return s.ref - 1
		}
	}
}

func (t *provTable) put(dg uint64, ref int32) {
	if (t.n+1)*3 >= len(t.slots)*2 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := dg & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.ref == 0 {
			s.digest, s.ref = dg, ref+1
			t.n++
			return
		}
		if s.digest == dg {
			s.ref = ref + 1
			return
		}
	}
}

// del removes and returns the arena index for dg (provNil when absent),
// closing the probe cluster by the standard backward-shift: each later
// cluster member whose home slot is at or before the hole moves into it.
func (t *provTable) del(dg uint64) int32 {
	if len(t.slots) == 0 {
		return provNil
	}
	mask := uint64(len(t.slots) - 1)
	i := dg & mask
	for {
		s := &t.slots[i]
		if s.ref == 0 {
			return provNil
		}
		if s.digest == dg {
			break
		}
		i = (i + 1) & mask
	}
	removed := t.slots[i].ref - 1
	j := i
	for {
		j = (j + 1) & mask
		s := t.slots[j]
		if s.ref == 0 {
			break
		}
		if (j-s.digest)&mask >= (j-i)&mask {
			t.slots[i] = s
			i = j
		}
	}
	t.slots[i] = provSlot{}
	t.n--
	return removed
}

func (t *provTable) grow() {
	old := t.slots
	size := 1024
	if len(old) > 0 {
		size = len(old) * 2
	}
	t.slots = make([]provSlot, size)
	t.n = 0
	for _, s := range old {
		if s.ref != 0 {
			t.put(s.digest, s.ref-1)
		}
	}
}

// provStore is the bounded provenance store. The facts table, eviction
// list, and freelists are guarded by mu; the journal j is owned by the
// apply goroutine (worker journals are absorbed at join barriers) and
// only read under mu during flush.
type provStore struct {
	mu       sync.Mutex
	capacity int
	facts    provTable
	// arena is the fact slab; the table and eviction list address it by
	// index. One large array replaces thousands of individually-allocated
	// fact containers, so the GC marks one object instead of walking the
	// store's population every cycle.
	arena []factProv
	// head/tail are the FIFO eviction list (arena indices), oldest first.
	head, tail int32
	// seq stamps replayed ops in order across transactions (see
	// derivation.seq).
	seq uint64
	j   provJournal
	// pending indexes the journal's unrecord ops during a flush, so they
	// replay after every drop.
	pending []int32
	// factFree recycles arena slots; inputsFree recycles the factRef
	// backing arrays of removed derivations. Only touched under mu, so
	// plain slice stacks beat sync.Pool on the replay path.
	factFree   []int32
	inputsFree [][]factRef
	// dropTab notes the digests dropped during the current flush so the
	// deferred unrecord pass can skip its facts-table probe for them (the
	// common retraction shape: a fact loses its last derivation and is
	// dropped wholesale in the same transaction). Entries are validated
	// by epoch, so the table is never cleared; dropOverflow falls back to
	// the real probe when a flush drops more facts than the table holds.
	dropTab      []dropEnt
	dropEpoch    uint32
	dropOverflow bool
	// live counts non-tombstone facts; facts.n additionally counts
	// tombstones still occupying table slots.
	live          int
	evictions     uint64
	droppedDerivs uint64
}

// dropEnt is one dropTab slot: the dropped digest, the journal index of
// the drop, and the flush epoch that wrote it.
type dropEnt struct {
	dg    uint64
	idx   int32
	epoch uint32
}

const dropTabSlots = 1024 // power of two; L1/L2-resident (16 KiB)

// noteDropped records that dg was dropped by the op at journal index idx.
func (ps *provStore) noteDropped(dg uint64, idx int32) {
	if ps.dropOverflow {
		return
	}
	mask := uint64(dropTabSlots - 1)
	for i, probes := dg&mask, 0; probes < 16; i, probes = (i+1)&mask, probes+1 {
		e := &ps.dropTab[i]
		if e.epoch != ps.dropEpoch {
			*e = dropEnt{dg: dg, idx: idx, epoch: ps.dropEpoch}
			return
		}
		if e.dg == dg {
			if idx > e.idx {
				e.idx = idx
			}
			return
		}
	}
	ps.dropOverflow = true
}

// droppedAfter reports whether dg was dropped by an op later in the
// journal than idx; a deferred unrecord at idx can then skip its probe —
// every derivation it could match was wiped by that drop (re-records
// after the drop carry later seqs, which the seq guard protects anyway).
func (ps *provStore) droppedAfter(dg uint64, idx int32) bool {
	mask := uint64(dropTabSlots - 1)
	for i := dg & mask; ; i = (i + 1) & mask {
		e := &ps.dropTab[i]
		if e.epoch != ps.dropEpoch {
			return false
		}
		if e.dg == dg {
			return e.idx > idx
		}
	}
}

func newProvStore(capacity int) *provStore {
	if capacity <= 0 {
		capacity = DefaultProvenanceCapacity
	}
	return &provStore{capacity: capacity, head: provNil, tail: provNil}
}

// provSeed keys every provenance hash; identities are stable within a
// process only, which is all the in-memory store needs.
var provSeed = maphash.MakeSeed()

// provDigest identifies the fact (rel, key) in the facts table. Keying
// the table by a 64-bit digest instead of the full (int, string) pair
// keeps the replay off the long record-key strings. A collision would
// merge two facts' provenance trees; at the store's default 2^16
// capacity the probability of any collision existing is ~2^-32 —
// acceptable for a debugging aid.
func provDigest(rel int, key string) uint64 {
	return provFold(maphash.String(provSeed, key), rel)
}

// provFold mixes a key hash with a relation id (golden-ratio multiply),
// completing a fact digest from an already-computed key hash.
func provFold(keyHash uint64, rel int) uint64 {
	return keyHash + uint64(rel)*0x9e3779b97f4a7c15
}

// provLabelHash hashes a rule label once at compile time, so per-emit sig
// hashing starts from a constant instead of re-hashing the label string.
func provLabelHash(label string) uint64 {
	return maphash.String(provSeed, label)
}

// allocFact returns a free arena index, growing the slab if the freelist
// is empty. Callers must not hold *factProv pointers across the call.
func (ps *provStore) allocFact() int32 {
	if n := len(ps.factFree); n > 0 {
		ref := ps.factFree[n-1]
		ps.factFree = ps.factFree[:n-1]
		return ref
	}
	ps.arena = append(ps.arena, factProv{prev: provNil, next: provNil})
	return int32(len(ps.arena) - 1)
}

// newInputs returns a recycled factRef backing array (or nil) to build a
// derivation's input list in.
func (ps *provStore) newInputs() []factRef {
	if n := len(ps.inputsFree); n > 0 {
		in := ps.inputsFree[n-1]
		ps.inputsFree[n-1] = nil
		ps.inputsFree = ps.inputsFree[:n-1]
		return in
	}
	return nil
}

func (ps *provStore) freeInputs(in []factRef) {
	if cap(in) == 0 {
		return
	}
	clear(in[:cap(in)])
	ps.inputsFree = append(ps.inputsFree, in[:0])
}

// wipeDerivs recycles every derivation of the fact, leaving derivs empty.
func (ps *provStore) wipeDerivs(fp *factProv) {
	for k := range fp.derivs {
		ps.freeInputs(fp.derivs[k].inputs)
	}
	clear(fp.derivs)
	fp.derivs = fp.derivs[:0]
}

// dropDeriv removes fp.derivs[k], recycling its inputs and keeping order.
func (ps *provStore) dropDeriv(fp *factProv, k int) {
	ps.freeInputs(fp.derivs[k].inputs)
	last := len(fp.derivs) - 1
	copy(fp.derivs[k:], fp.derivs[k+1:])
	fp.derivs[last] = derivation{}
	fp.derivs = fp.derivs[:last]
}

// freeFact recycles the fact at ref: derivations are wiped and the arena
// slot (with its derivs capacity) is pushed on the freelist.
func (ps *provStore) freeFact(ref int32) {
	fp := &ps.arena[ref]
	ps.wipeDerivs(fp)
	fp.rec = nil
	fp.digest, fp.rel = 0, 0
	fp.dead = false
	fp.prev, fp.next = provNil, provNil
	ps.factFree = append(ps.factFree, ref)
}

// pushBack appends a fresh fact to the eviction list's tail.
func (ps *provStore) pushBack(ref int32) {
	fp := &ps.arena[ref]
	fp.prev = ps.tail
	fp.next = provNil
	if ps.tail != provNil {
		ps.arena[ps.tail].next = ref
	} else {
		ps.head = ref
	}
	ps.tail = ref
}

// unlink removes a fact from the eviction list.
func (ps *provStore) unlink(ref int32) {
	fp := &ps.arena[ref]
	if fp.prev != provNil {
		ps.arena[fp.prev].next = fp.next
	} else {
		ps.head = fp.next
	}
	if fp.next != provNil {
		ps.arena[fp.next].prev = fp.prev
	} else {
		ps.tail = fp.prev
	}
	fp.prev, fp.next = provNil, provNil
}

// inputHash hashes one trail fact: the hash of its canonical encoding
// combined with its relation id by the same golden-ratio fold as
// provDigest. Record.Key() is exactly the canonical encoding as a string,
// so when the trail entry carries the key (join steps read it off the
// arrangement bucket) the hash comes from the existing string with no
// re-encoding; entries without a key (plan seeds) encode into the
// caller's scratch first. Both paths hash identical bytes, so the same
// fact always contributes the same value to a sig.
func inputHash(buf *[]byte, t *provInput) uint64 {
	var h uint64
	if t.key != "" {
		h = maphash.String(provSeed, t.key)
	} else {
		b := t.rec.AppendEncode((*buf)[:0])
		*buf = b
		h = maphash.Bytes(provSeed, b)
	}
	return provFold(h, t.rs.id)
}

// sigHash computes a derivation's identity: the precomputed rule-label
// hash combined, by wrapping addition, with one hash per input fact.
// Addition commutes, so the identity is independent of which body literal
// seeded the plan that produced (or retracts) the derivation — no
// sorting, no string materialization, no per-emit allocation (buf is the
// caller's per-goroutine scratch). Input hashes are cached in the trail
// entries, so a fact feeding many emits is encoded and hashed once.
func sigHash(buf *[]byte, labelHash uint64, trail []provInput) uint64 {
	sig := labelHash
	for i := range trail {
		t := &trail[i]
		if t.hash == 0 {
			t.hash = inputHash(buf, t)
		}
		sig += t.hash
	}
	return sig
}

// flush replays the transaction's journal into the store under one lock
// acquisition. Ops replay in journal order — the apply goroutine's
// chronological order — except unrecords, which are deferred to a second
// pass: a fact retracted outright later in the transaction is gone by
// then (its unrecords never pay the derivation scan), while the seq
// stamps keep an unrecord from removing a derivation that was
// re-recorded after it.
func (ps *provStore) flush() {
	j := &ps.j
	if len(j.ops) == 0 {
		return
	}
	ps.mu.Lock()
	if ps.dropTab == nil {
		ps.dropTab = make([]dropEnt, dropTabSlots)
	}
	ps.dropEpoch++
	ps.dropOverflow = false
	base := ps.seq
	for i := range j.ops {
		op := &j.ops[i]
		switch op.kind {
		case opRecord:
			ps.applyRecord(op, base+uint64(i)+1, j.refs)
		case opUnrec:
			ps.pending = append(ps.pending, int32(i))
		case opDrop:
			if ref := ps.facts.get(op.dg); ref != provNil {
				if fp := &ps.arena[ref]; !fp.dead {
					fp.dead = true
					ps.live--
					ps.wipeDerivs(fp)
				}
			}
			ps.noteDropped(op.dg, int32(i))
		case opUnrecLabel:
			ps.applyUnrecLabel(op)
		}
	}
	for _, idx := range ps.pending {
		op := &j.ops[idx]
		if !ps.dropOverflow && ps.droppedAfter(op.dg, idx) {
			continue
		}
		ref := ps.facts.get(op.dg)
		if ref == provNil {
			continue
		}
		fp := &ps.arena[ref]
		if fp.dead {
			continue
		}
		unrecSeq := base + uint64(idx) + 1
		for k := range fp.derivs {
			if d := &fp.derivs[k]; d.sig == op.sig && d.seq < unrecSeq {
				ps.dropDeriv(fp, k)
				break
			}
		}
	}
	ps.pending = ps.pending[:0]
	ps.seq = base + uint64(len(j.ops))
	ps.mu.Unlock()
	j.reset()
}

// applyRecord adds one derivation of the op's fact; duplicates (same sig)
// are collapsed with their seq refreshed. The duplicate path — every
// re-derivation of an existing fact — is allocation-free.
func (ps *provStore) applyRecord(op *provOp, seq uint64, refs []factRef) {
	ps.evictLocked()
	ref := ps.facts.getOrInsert(op.dg, func() int32 {
		r := ps.allocFact()
		fp := &ps.arena[r]
		fp.digest = op.dg
		fp.rel = op.rel
		ps.pushBack(r)
		ps.live++
		return r
	})
	fp := &ps.arena[ref]
	if fp.dead {
		fp.dead = false
		ps.live++
	}
	fp.rec = op.rec
	for k := range fp.derivs {
		if fp.derivs[k].sig == op.sig {
			fp.derivs[k].seq = seq
			return
		}
	}
	if len(fp.derivs) >= maxDerivationsPerFact {
		ps.droppedDerivs++
		return
	}
	fp.derivs = append(fp.derivs, derivation{
		label: op.label, stratum: op.stratum, truncated: op.truncated,
		inputs: append(ps.newInputs(), refs[op.refLo:op.refHi]...),
		sig:    op.sig, seq: seq,
	})
}

// applyUnrecLabel removes every derivation of the op's fact recorded
// under the op's label, regardless of inputs (aggregate re-derivations
// replace the whole group's contribution).
func (ps *provStore) applyUnrecLabel(op *provOp) {
	ref := ps.facts.get(op.dg)
	if ref == provNil {
		return
	}
	fp := &ps.arena[ref]
	if fp.dead {
		return
	}
	for k := len(fp.derivs) - 1; k >= 0; k-- {
		if fp.derivs[k].label == op.label {
			ps.dropDeriv(fp, k)
		}
	}
}

// evictLocked makes room for one more fact by evicting in FIFO order.
func (ps *provStore) evictLocked() {
	for ps.facts.n >= ps.capacity && ps.head != provNil {
		ref := ps.head
		fp := &ps.arena[ref]
		ps.unlink(ref)
		ps.facts.del(fp.digest)
		if !fp.dead {
			ps.live--
			ps.evictions++
		}
		ps.freeFact(ref)
	}
}

// ProvenanceStats summarizes the provenance store.
type ProvenanceStats struct {
	// Facts is the number of facts with recorded provenance.
	Facts int
	// Evictions counts facts discarded by the capacity bound.
	Evictions uint64
	// DroppedDerivations counts alternate derivations discarded by the
	// per-fact bound.
	DroppedDerivations uint64
}

// ProvenanceEnabled reports whether the runtime collects provenance.
func (rt *Runtime) ProvenanceEnabled() bool { return rt.prov != nil }

// ProvenanceStats reports provenance store statistics (zero when
// collection is off).
func (rt *Runtime) ProvenanceStats() ProvenanceStats {
	if rt.prov == nil {
		return ProvenanceStats{}
	}
	rt.prov.mu.Lock()
	defer rt.prov.mu.Unlock()
	return ProvenanceStats{
		Facts:              rt.prov.live,
		Evictions:          rt.prov.evictions,
		DroppedDerivations: rt.prov.droppedDerivs,
	}
}

// ExplainOptions bound a derivation tree; zero values select the
// defaults.
type ExplainOptions struct {
	MaxDepth int
	MaxNodes int
}

// ExplainNode is one node of a derivation tree.
type ExplainNode struct {
	Relation string `json:"relation"`
	Record   string `json:"record"`
	// Kind is "derived" (a rule produced it; Rule/Children say how),
	// "input" (externally fed), "unknown" (the fact was an input to a
	// recorded derivation but its own provenance is gone — evicted or
	// never recorded), or "cycle" (already expanded on this path).
	Kind    string `json:"kind"`
	Rule    string `json:"rule,omitempty"`
	Stratum int    `json:"stratum,omitempty"`
	// TxnID is filled by layers that know transaction identity (the
	// controller annotates input leaves with the OVSDB txn that inserted
	// the row); the engine never sets it.
	TxnID uint64 `json:"txn_id,omitempty"`
	// Alternatives counts additional recorded derivations not expanded.
	Alternatives int `json:"alternatives,omitempty"`
	// Truncated marks nodes cut short by the depth/node budget or by the
	// aggregate input cap.
	Truncated bool           `json:"truncated,omitempty"`
	Children  []*ExplainNode `json:"children,omitempty"`

	// Tuple and RecordKey carry the fact itself for in-process callers
	// (tests, the controller's txn annotation); not serialized.
	Tuple     value.Record `json:"-"`
	RecordKey string       `json:"-"`
}

// Explain returns the derivation tree of rec in a derived relation. ok is
// false when provenance is off, the relation is unknown, hidden, or an
// input, or the fact has no recorded provenance (never derived,
// retracted, or evicted). It reads only the provenance store, so it is
// safe to call concurrently with Apply.
func (rt *Runtime) Explain(relation string, rec value.Record, opt ExplainOptions) (*ExplainNode, bool) {
	rs := rt.relByName[relation]
	if rt.prov == nil || rs == nil || rs.hidden || rs.isInput() {
		return nil, false
	}
	return rt.prov.explain(rt, rs, rec.Key(), opt)
}

// ExplainRendered is Explain keyed by the record's String() rendering —
// the operator-facing form the /debug/explain endpoint receives. The
// store is scanned linearly under its lock; acceptable for a debug query.
func (rt *Runtime) ExplainRendered(relation, rendered string, opt ExplainOptions) (*ExplainNode, bool) {
	rs := rt.relByName[relation]
	if rt.prov == nil || rs == nil || rs.hidden || rs.isInput() {
		return nil, false
	}
	rt.prov.mu.Lock()
	key := ""
	found := false
	for i := range rt.prov.arena {
		fp := &rt.prov.arena[i]
		if fp.rec != nil && !fp.dead && fp.rel == int32(rs.id) && fp.rec.String() == rendered {
			key, found = fp.rec.Key(), true
			break
		}
	}
	rt.prov.mu.Unlock()
	if !found {
		return nil, false
	}
	return rt.prov.explain(rt, rs, key, opt)
}

func (ps *provStore) explain(rt *Runtime, rs *relState, key string, opt ExplainOptions) (*ExplainNode, bool) {
	depth, nodes := opt.MaxDepth, opt.MaxNodes
	if depth <= 0 {
		depth = DefaultExplainDepth
	}
	if nodes <= 0 {
		nodes = DefaultExplainNodes
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ref := ps.facts.get(provDigest(rs.id, key))
	if ref == provNil {
		return nil, false
	}
	fp := &ps.arena[ref]
	if fp.dead || len(fp.derivs) == 0 {
		return nil, false
	}
	budget := nodes
	path := make(map[uint64]bool)
	return ps.nodeLocked(rt, rs.id, key, fp.rec, depth, &budget, path), true
}

// nodeLocked builds the tree node for one fact (store mutex held). path
// tracks the digests of facts being expanded on the current path for
// cycle detection.
func (ps *provStore) nodeLocked(rt *Runtime, rel int, key string, rec value.Record, depth int, budget *int, path map[uint64]bool) *ExplainNode {
	*budget--
	dg := provDigest(rel, key)
	rs := rt.rels[rel]
	n := &ExplainNode{
		Relation:  rs.rel.Name,
		Record:    rec.String(),
		Tuple:     rec,
		RecordKey: key,
	}
	if rs.isInput() {
		n.Kind = "input"
		return n
	}
	ref := ps.facts.get(dg)
	if ref == provNil {
		n.Kind = "unknown"
		return n
	}
	fp := &ps.arena[ref]
	if fp.dead || len(fp.derivs) == 0 {
		n.Kind = "unknown"
		return n
	}
	n.Kind = "derived"
	// Prefer a derivation that does not revisit a fact already being
	// expanded on this path (recursive strata can record cyclic
	// alternates).
	d := &fp.derivs[0]
	for k := range fp.derivs {
		cand := &fp.derivs[k]
		revisits := false
		for _, in := range cand.inputs {
			if path[provDigest(in.rel, in.rec.Key())] {
				revisits = true
				break
			}
		}
		if !revisits {
			d = cand
			break
		}
	}
	n.Rule = d.label
	n.Stratum = int(d.stratum)
	n.Alternatives = len(fp.derivs) - 1
	n.Truncated = d.truncated
	if depth <= 0 {
		if len(d.inputs) > 0 {
			n.Truncated = true
		}
		return n
	}
	path[dg] = true
	for _, in := range d.inputs {
		if *budget <= 0 {
			n.Truncated = true
			break
		}
		ckey := in.rec.Key()
		if path[provDigest(in.rel, ckey)] {
			*budget--
			n.Children = append(n.Children, &ExplainNode{
				Relation:  rt.rels[in.rel].rel.Name,
				Record:    in.rec.String(),
				Kind:      "cycle",
				Tuple:     in.rec,
				RecordKey: ckey,
			})
			continue
		}
		n.Children = append(n.Children, ps.nodeLocked(rt, in.rel, ckey, in.rec, depth-1, budget, path))
	}
	delete(path, dg)
	return n
}

// recordProv journals one derivation record (w>0) or retraction (w<0) at
// plan emit time. Called only when the emitting context has capture on;
// ctx supplies the sig-hash scratch and the goroutine's journal. It
// returns the head key's hash so the emit path can hand it onward to
// applyCount — the count entry caches it, making this the only time the
// fact's identity is hashed.
func (rt *Runtime) recordProv(ctx *evalCtx, cr *compiledRule, rec value.Record, key string, w int64, trail []provInput) uint64 {
	sig := sigHash(&ctx.sigBuf, cr.labelHash, trail)
	hh := maphash.String(provSeed, key)
	dg := provFold(hh, cr.head.id)
	if w > 0 {
		ctx.journal.record(dg, cr.head.id, rec, sig, cr.label, cr.head.stratum, trail, false)
	} else if w < 0 {
		ctx.journal.unrecord(dg, sig)
	}
	return hh
}

// recordAggProv journals an aggregate head fact with its (capped) group
// bucket as the input set. Aggregates run on the apply goroutine, so the
// sequential context's scratch and the store's own journal are free to
// use.
func (rt *Runtime) recordAggProv(spec *aggSpec, keyEnc []byte, rec value.Record, key string) {
	var trail []provInput
	truncated := false
	spec.groupRel.iterBucket(spec.keyIx, keyEnc, false, func(grec value.Record, gkey string, gph uint64) bool {
		if len(trail) >= maxAggProvInputs {
			truncated = true
			return false
		}
		ti := provInput{rs: spec.groupRel, rec: grec, key: gkey}
		if gph != 0 {
			ti.hash = provFold(gph, spec.groupRel.id)
		}
		trail = append(trail, ti)
		return true
	})
	sig := sigHash(&rt.seqCtx.sigBuf, spec.labelHash, trail)
	rt.prov.j.record(provDigest(spec.head.id, key), spec.head.id, rec, sig, spec.label, spec.head.stratum, trail, truncated)
}

// ruleLabel renders a compact operator-facing identity for a compiled
// rule: the head name and the body literal shapes.
func ruleLabel(cr *compiledRule) string {
	var sb strings.Builder
	sb.WriteString(cr.head.rel.Name)
	sb.WriteString(" :- ")
	wrote := false
	nonLit := false
	for _, term := range cr.body {
		lit, ok := term.(*typecheck.LiteralTerm)
		if !ok {
			nonLit = true
			continue
		}
		if wrote {
			sb.WriteString(", ")
		}
		wrote = true
		if lit.Negated {
			sb.WriteString("not ")
		}
		sb.WriteString(lit.Rel.Name)
		sb.WriteString("(..)")
	}
	if nonLit {
		if wrote {
			sb.WriteString(", ")
		}
		sb.WriteString("..")
		wrote = true
	}
	if !wrote {
		sb.WriteString("<fact>")
	}
	return sb.String()
}
