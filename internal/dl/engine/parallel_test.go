package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dl/ast"
	"repro/internal/dl/value"
)

// deltasEqual reports whether two transaction deltas are identical, and if
// not, describes the first difference.
func deltasEqual(a, b Delta) (bool, string) {
	if len(a) != len(b) {
		return false, fmt.Sprintf("delta relation count %d vs %d", len(a), len(b))
	}
	for rel, za := range a {
		zb, ok := b[rel]
		if !ok {
			return false, fmt.Sprintf("relation %s missing", rel)
		}
		ea, eb := za.Entries(), zb.Entries()
		if len(ea) != len(eb) {
			return false, fmt.Sprintf("%s: %d vs %d entries", rel, len(ea), len(eb))
		}
		for i := range ea {
			if !ea[i].Rec.Equal(eb[i].Rec) || ea[i].Weight != eb[i].Weight {
				return false, fmt.Sprintf("%s[%d]: %v*%d vs %v*%d",
					rel, i, ea[i].Rec, ea[i].Weight, eb[i].Rec, eb[i].Weight)
			}
		}
	}
	return true, ""
}

// runParallelEquivalence drives identical random transactions through a
// sequential runtime, several parallel runtimes, and the naive reference
// evaluator, requiring byte-identical deltas and contents throughout. This
// is the determinism invariant of the worker pool: Workers must be
// unobservable in every output.
func runParallelEquivalence(t *testing.T, src string, gen func(r *rand.Rand, insert bool) Update, txns, opsPerTxn int, seed int64) {
	t.Helper()
	prog := compile(t, src)
	optVariants := []Options{
		{Workers: 4},
		{Workers: 8, RecursiveDeleteFallback: 0.5},
	}
	seqRT, err := New(prog, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parRTs := make([]*Runtime, len(optVariants))
	for i, o := range optVariants {
		if parRTs[i], err = New(prog, o); err != nil {
			t.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(seed))
	live := make(map[string]map[string]value.Record)
	for _, rel := range prog.Relations {
		if rel.Role == ast.RoleInput {
			live[rel.Name] = make(map[string]value.Record)
		}
	}
	for txn := 0; txn < txns; txn++ {
		var ups []Update
		for i := 0; i < 1+r.Intn(opsPerTxn); i++ {
			u := gen(r, r.Intn(3) > 0)
			ups = append(ups, u)
			if u.Insert {
				live[u.Relation][u.Rec.Key()] = u.Rec
			} else {
				delete(live[u.Relation], u.Rec.Key())
			}
		}
		seqDelta, err := seqRT.Apply(ups)
		if err != nil {
			t.Fatalf("txn %d (sequential): %v", txn, err)
		}
		for i, parRT := range parRTs {
			parDelta, err := parRT.Apply(ups)
			if err != nil {
				t.Fatalf("txn %d (workers=%d): %v", txn, optVariants[i].Workers, err)
			}
			if ok, diff := deltasEqual(seqDelta, parDelta); !ok {
				t.Fatalf("txn %d: workers=%d delta diverged from sequential: %s",
					txn, optVariants[i].Workers, diff)
			}
		}
		inputs := make(map[string][]value.Record)
		for name, m := range live {
			for _, rec := range m {
				inputs[name] = append(inputs[name], rec)
			}
		}
		want, err := NaiveEval(prog, inputs)
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		for _, rel := range prog.Relations {
			for i, parRT := range parRTs {
				got, _ := parRT.Contents(rel.Name)
				if len(got) != len(want[rel.Name]) {
					t.Fatalf("txn %d: workers=%d: %s has %d records, naive %d",
						txn, optVariants[i].Workers, rel.Name, len(got), len(want[rel.Name]))
				}
				for j := range got {
					if !got[j].Equal(want[rel.Name][j]) {
						t.Fatalf("txn %d: workers=%d: %s[%d] = %v, naive %v",
							txn, optVariants[i].Workers, rel.Name, j, got[j], want[rel.Name][j])
					}
				}
			}
		}
	}
}

// Wide fan-out generators so transactions regularly clear minParallelJobs
// and actually exercise the pool.

func genReach(r *rand.Rand, insert bool) Update {
	if r.Intn(5) == 0 {
		return Update{
			Relation: "GivenLabel",
			Rec:      strRec(fmt.Sprintf("n%d", r.Intn(8)), fmt.Sprintf("L%d", r.Intn(2))),
			Insert:   insert,
		}
	}
	return Update{
		Relation: "Edge",
		Rec:      strRec(fmt.Sprintf("n%d", r.Intn(8)), fmt.Sprintf("n%d", r.Intn(8))),
		Insert:   insert,
	}
}

func TestParallelEquivalenceReachability(t *testing.T) {
	runParallelEquivalence(t, reachSrc, genReach, 50, 8, 11)
	runParallelEquivalence(t, reachSrc, genReach, 50, 8, 12)
}

func TestParallelEquivalenceNegationJoin(t *testing.T) {
	src := `
	input relation A(x: string, y: string)
	input relation B(y: string)
	output relation O(x: string)
	output relation P(x: string, y: string)
	O(x) :- A(x, y), not B(y).
	P(x, z) :- A(x, y), A(y, z), not B(x).
	`
	gen := func(r *rand.Rand, insert bool) Update {
		if r.Intn(3) == 0 {
			return Update{Relation: "B", Rec: strRec(fmt.Sprintf("n%d", r.Intn(5))), Insert: insert}
		}
		return Update{
			Relation: "A",
			Rec:      strRec(fmt.Sprintf("n%d", r.Intn(5)), fmt.Sprintf("n%d", r.Intn(5))),
			Insert:   insert,
		}
	}
	runParallelEquivalence(t, src, gen, 60, 8, 13)
}

func TestParallelEquivalenceAggregation(t *testing.T) {
	src := `
	input relation S(k: string, item: string, v: int)
	output relation T(k: string, total: int)
	output relation C(k: string, n: int)
	T(k, s) :- S(k, i, v), var s = sum(v) group_by (k).
	C(k, c) :- S(k, i, v), var c = count() group_by (k).
	`
	gen := func(r *rand.Rand, insert bool) Update {
		return Update{
			Relation: "S",
			Rec: value.Record{
				value.String(fmt.Sprintf("k%d", r.Intn(3))),
				value.String(fmt.Sprintf("i%d", r.Intn(4))),
				value.Int(int64(r.Intn(10))),
			},
			Insert: insert,
		}
	}
	runParallelEquivalence(t, src, gen, 60, 8, 14)
}

func TestParallelEquivalenceMutualRecursion(t *testing.T) {
	src := `
	input relation E(a: string, b: string)
	output relation Even(a: string, b: string)
	output relation Odd(a: string, b: string)
	Odd(a, b) :- E(a, b).
	Odd(a, c) :- Even(a, b), E(b, c).
	Even(a, c) :- Odd(a, b), E(b, c).
	`
	gen := func(r *rand.Rand, insert bool) Update {
		return Update{
			Relation: "E",
			Rec:      strRec(fmt.Sprintf("n%d", r.Intn(6)), fmt.Sprintf("n%d", r.Intn(6))),
			Insert:   insert,
		}
	}
	runParallelEquivalence(t, src, gen, 50, 6, 15)
}

// TestQuickParallelDeterminism is the testing/quick form of the invariant:
// any seed must produce a byte-identical delta stream at every worker
// count. Each quick iteration runs a short random transaction sequence
// against the reachability program.
func TestQuickParallelDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		prog := compile(t, reachSrc)
		rt1, err := New(prog, Options{Workers: 1})
		if err != nil {
			return false
		}
		rt4, err := New(prog, Options{Workers: 4})
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for txn := 0; txn < 10; txn++ {
			var ups []Update
			for i := 0; i < 1+r.Intn(10); i++ {
				ups = append(ups, genReach(r, r.Intn(3) > 0))
			}
			d1, err1 := rt1.Apply(ups)
			d4, err4 := rt4.Apply(ups)
			if (err1 == nil) != (err4 == nil) {
				return false
			}
			if err1 != nil {
				return true // both failed identically early
			}
			if ok, _ := deltasEqual(d1, d4); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelDerivationGuard: the budget must still trip under parallel
// evaluation (counted atomically across workers).
func TestParallelDerivationGuard(t *testing.T) {
	rt, err := New(compile(t, reachSrc), Options{Workers: 4, MaxDerivationsPerTxn: 5})
	if err != nil {
		t.Fatal(err)
	}
	var ups []Update
	ups = append(ups, Insert("GivenLabel", strRec("n0", "L")))
	for i := 0; i < 30; i++ {
		ups = append(ups, Insert("Edge", strRec(
			fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))))
	}
	if _, err := rt.Apply(ups); err == nil {
		t.Fatalf("derivation guard did not trip under Workers:4")
	}
}
