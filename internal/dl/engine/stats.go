package engine

import "time"

// StratumStats times one stratum's propagation within a single Apply.
type StratumStats struct {
	Stratum   int
	Recursive bool
	// Jobs counts plan seedings evaluated: the settled job list for
	// counting strata, the cumulative frontier size for parallel
	// recursive strata. The sequential recursive path does not count
	// (its LIFO cascade has no batch boundary) and reports 0.
	Jobs int
	// Rounds counts breadth-first propagation rounds (parallel recursive
	// strata only; DRed overdelete and insertion rounds both count).
	Rounds   int
	Duration time.Duration
}

// ApplyStats describes one transaction's evaluation when
// Options.CollectStats is set. Collection adds two clock reads per
// stratum plus two per parallel job; with CollectStats false none of
// this code runs.
type ApplyStats struct {
	Strata      []StratumStats
	Derivations int64
	// DeltaSize is the total number of tuple changes across all output
	// relations' deltas.
	DeltaSize int
	// Workers echoes Options.Workers; WorkerBusy[i] is worker i's total
	// plan-evaluation time across all parallel batches of the Apply
	// (empty when evaluation stayed sequential).
	Workers    int
	WorkerBusy []time.Duration
	// Rules attributes the transaction's evaluation per rule (nil unless
	// Options.CollectRuleStats; rules with no activity are omitted).
	Rules []RuleStats
}

// LastApplyStats returns the statistics of the most recent Apply, or nil
// when Options.CollectStats is unset. The returned value is owned by the
// runtime and valid until the next Apply.
func (rt *Runtime) LastApplyStats() *ApplyStats { return rt.lastStats }

// NumStrata returns the number of evaluation strata in the compiled
// program (useful for pre-registering per-stratum metrics).
func (rt *Runtime) NumStrata() int { return len(rt.strata) }

// instrument wraps a worker function with per-worker busy-time
// accounting when stats collection is on.
func (rt *Runtime) instrument(fn func(wi, i int) error) func(wi, i int) error {
	if rt.stats == nil {
		return fn
	}
	busy := rt.stats.WorkerBusy
	return func(wi, i int) error {
		t0 := time.Now()
		err := fn(wi, i)
		// Each worker only touches its own slot; no synchronization needed.
		busy[wi] += time.Since(t0)
		return err
	}
}
