// Package engine evaluates checked Datalog programs fully incrementally.
//
// Relations hold Z-set contents (derivation-counted for non-recursive
// relations, presence-only for recursive ones). A transaction applies a
// set-level delta to the input relations and propagates it stratum by
// stratum:
//
//   - non-recursive strata use counting: each rule is differentiated into
//     one "seed plan" per body literal occurrence, evaluated against old/new
//     views of the other literals (the standard multilinear expansion), so
//     the work done is proportional to the delta, not the database;
//   - recursive strata use DRed (delete–rederive) with semi-naive insertion,
//     the classic algorithm for incremental recursive views;
//   - group_by rules materialize their bodies into hidden relations and
//     re-aggregate only the affected groups.
//
// The central invariant — incremental evaluation produces exactly the same
// relation contents as recomputing from scratch — is enforced by property
// tests in this package.
package engine

import "fmt"

// depEdge is one dependency edge of the relation graph.
type depEdge struct {
	from, to int  // relation ids
	special  bool // negation or aggregation: must cross strata
}

// stratify computes SCCs of the relation dependency graph in topological
// order and validates stratification constraints.
//
// nodes is the number of relations; edges the dependencies (body → head).
// It returns, for each relation id, its stratum number, plus the list of
// strata, each a list of relation ids, and whether each stratum is
// recursive.
func stratify(nodes int, edges []depEdge) (stratumOf []int, strata [][]int, recursive []bool, err error) {
	adj := make([][]int, nodes)
	selfLoop := make([]bool, nodes)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		if e.from == e.to {
			selfLoop[e.from] = true
		}
	}

	// Tarjan's strongly connected components, iterative to survive deep
	// graphs.
	const unvisited = -1
	index := make([]int, nodes)
	low := make([]int, nodes)
	onStack := make([]bool, nodes)
	comp := make([]int, nodes)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack, callStack []int
	var childIdx []int
	counter := 0
	var sccs [][]int

	for root := 0; root < nodes; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack = append(callStack[:0], root)
		childIdx = append(childIdx[:0], 0)
		index[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(callStack) > 0 {
			v := callStack[len(callStack)-1]
			if childIdx[len(childIdx)-1] < len(adj[v]) {
				w := adj[v][childIdx[len(childIdx)-1]]
				childIdx[len(childIdx)-1]++
				if index[w] == unvisited {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, w)
					childIdx = append(childIdx, 0)
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// Post-visit v.
			callStack = callStack[:len(callStack)-1]
			childIdx = childIdx[:len(childIdx)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1]
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(sccs)
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}

	// Tarjan emits SCCs in reverse topological order (an SCC is emitted
	// after everything it depends on... precisely: if a→b then comp(b) is
	// emitted no later than comp(a) only when traversal reaches b first).
	// Compute a topological order of the condensation explicitly to be safe.
	nscc := len(sccs)
	cAdj := make([][]int, nscc)
	inDeg := make([]int, nscc)
	seen := make(map[[2]int]bool)
	for _, e := range edges {
		a, b := comp[e.from], comp[e.to]
		if a == b {
			continue
		}
		k := [2]int{a, b}
		if seen[k] {
			continue
		}
		seen[k] = true
		cAdj[a] = append(cAdj[a], b)
		inDeg[b]++
	}
	var queue []int
	for i := 0; i < nscc; i++ {
		if inDeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, nscc)
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		order = append(order, c)
		for _, d := range cAdj[c] {
			inDeg[d]--
			if inDeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) != nscc {
		return nil, nil, nil, fmt.Errorf("engine: dependency graph has an unexpected cycle in its condensation")
	}

	stratumOf = make([]int, nodes)
	strata = make([][]int, nscc)
	recursive = make([]bool, nscc)
	for pos, c := range order {
		for _, rel := range sccs[c] {
			stratumOf[rel] = pos
		}
		strata[pos] = sccs[c]
		if len(sccs[c]) > 1 {
			recursive[pos] = true
		}
	}
	for i := 0; i < nodes; i++ {
		if selfLoop[i] {
			recursive[stratumOf[i]] = true
		}
	}
	// Special edges (negation, aggregation) must strictly increase strata.
	for _, e := range edges {
		if e.special && stratumOf[e.from] == stratumOf[e.to] {
			return nil, nil, nil, fmt.Errorf(
				"engine: program is not stratifiable: relation cycle through negation or aggregation")
		}
	}
	return stratumOf, strata, recursive, nil
}
