package engine

import "time"

// This file implements the workload profiler's engine layer: per-rule
// cost/cardinality attribution and per-relation memory accounting.
//
// Attribution follows the provenance journal's pattern: the sequential
// context accumulates directly into the runtime's per-transaction
// accumulator, worker contexts accumulate into private slices that the
// join barrier absorbs (attachRuleProf/absorbRuleProf in parallel.go).
// With Options.CollectRuleStats off, the only residue on the hot path is
// a length check per plan seeding — no clock reads, no allocation.

// ruleAcc accumulates one rule's counters within one transaction (or one
// worker's share of it).
type ruleAcc struct {
	ns       int64
	seedings int64
	derivs   int64
	delta    int64
	rounds   int64
}

// RuleStats is one rule's (or aggregation's) share of a transaction's
// evaluation, reported in ApplyStats.Rules when Options.CollectRuleStats
// is set.
type RuleStats struct {
	// Rule is the runtime-wide rule index (stable for the Runtime's
	// lifetime); ID is its short operator-facing name (head name plus a
	// per-head ordinal, e.g. "in_vlan#0"), Label the full rendered rule.
	Rule  int
	ID    string
	Label string
	// Stratum/Recursive locate the rule's head in the evaluation order.
	Stratum   int
	Recursive bool
	// Seedings counts plan runs seeded for this rule (including DRed
	// rederivation checks); Derivations counts head tuples the rule
	// emitted; DeltaTuples counts net presence transitions attributed to
	// the rule's emissions (recursive overdeletes are counted when
	// overdeleted, rederivations as insertions by the rederiving rule).
	Seedings    int64
	Derivations int64
	DeltaTuples int64
	// Rounds counts the breadth-first propagation rounds (parallel
	// recursive strata) in which the rule had at least one seeding.
	Rounds int64
	// Duration is the rule's summed plan-evaluation time. Worker time
	// counts per worker, so the sum over rules can exceed wall clock.
	Duration time.Duration
}

// RuleInfo identifies one rule for metric pre-registration; the slice
// returned by RuleInfos is index-aligned with RuleStats.Rule.
type RuleInfo struct {
	ID        string
	Label     string
	Stratum   int
	Recursive bool
}

// ruleCount is the size of the per-rule accumulator space: compiled
// rules first, then aggregation specs.
func (rt *Runtime) ruleCount() int { return len(rt.rules) + len(rt.aggs) }

// RuleInfos lists the program's rules and aggregations in accumulator
// order (nil unless Options.CollectRuleStats).
func (rt *Runtime) RuleInfos() []RuleInfo {
	if rt.ruleProf == nil {
		return nil
	}
	infos := make([]RuleInfo, 0, rt.ruleCount())
	for _, cr := range rt.rules {
		infos = append(infos, RuleInfo{
			ID:        cr.id,
			Label:     cr.label,
			Stratum:   cr.head.stratum,
			Recursive: cr.head.recursive,
		})
	}
	for _, sp := range rt.aggs {
		infos = append(infos, RuleInfo{
			ID:      sp.id,
			Label:   sp.label,
			Stratum: sp.head.stratum,
		})
	}
	return infos
}

// initRuleProf sets up the per-rule accumulator space (New, after rules
// and aggregations are compiled).
func (rt *Runtime) initRuleProf() {
	n := rt.ruleCount()
	if !rt.opts.CollectRuleStats || n == 0 {
		return
	}
	// Short IDs: head relation name plus a per-head ordinal.
	ordinal := make(map[string]int, n)
	shortID := func(head string) string {
		k := ordinal[head]
		ordinal[head] = k + 1
		return head + "#" + itoa(k)
	}
	for i, cr := range rt.rules {
		cr.idx = i
		// Group rules derive a hidden relation; name them after the
		// visible head they feed.
		cr.id = shortID(visibleHeadName(cr.head))
	}
	for i, sp := range rt.aggs {
		sp.idx = len(rt.rules) + i
		sp.id = shortID(sp.head.rel.Name)
	}
	rt.ruleProf = make([]ruleAcc, n)
	rt.roundEpoch = make([]uint32, n)
	rt.seqCtx.prof = rt.ruleProf
}

// visibleHeadName maps a hidden group relation to the visible head its
// aggregation feeds (its name embeds the head: "__group_<head>_<ri>").
func visibleHeadName(rs *relState) string {
	name := rs.rel.Name
	if !rs.hidden {
		return name
	}
	const pfx = "__group_"
	if len(name) > len(pfx) && name[:len(pfx)] == pfx {
		trimmed := name[len(pfx):]
		// Strip the trailing "_<ri>" ordinal.
		for i := len(trimmed) - 1; i > 0; i-- {
			if trimmed[i] == '_' {
				return trimmed[:i]
			}
			if trimmed[i] < '0' || trimmed[i] > '9' {
				break
			}
		}
	}
	return name
}

// itoa is a minimal non-negative integer formatter (avoids strconv in
// the engine's import set growing for one call site).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// profRound marks, once per breadth-first round, every rule with a
// seeding in the frontier (parallel recursive strata).
func (rt *Runtime) profRound(frontier []seedJob) {
	if rt.ruleProf == nil {
		return
	}
	rt.roundSeq++
	for i := range frontier {
		idx := frontier[i].p.rule.idx
		if rt.roundEpoch[idx] != rt.roundSeq {
			rt.roundEpoch[idx] = rt.roundSeq
			rt.ruleProf[idx].rounds++
		}
	}
}

// buildRuleStats renders the transaction accumulator into ApplyStats
// rows (rules with no activity are skipped) and resets it for the next
// transaction.
func (rt *Runtime) buildRuleStats() []RuleStats {
	var out []RuleStats
	emit := func(idx int, id, label string, stratum int, recursive bool) {
		a := rt.ruleProf[idx]
		if a == (ruleAcc{}) {
			return
		}
		out = append(out, RuleStats{
			Rule: idx, ID: id, Label: label,
			Stratum: stratum, Recursive: recursive,
			Seedings: a.seedings, Derivations: a.derivs,
			DeltaTuples: a.delta, Rounds: a.rounds,
			Duration: time.Duration(a.ns),
		})
	}
	for i, cr := range rt.rules {
		emit(i, cr.id, cr.label, cr.head.stratum, cr.head.recursive)
	}
	for i, sp := range rt.aggs {
		emit(len(rt.rules)+i, sp.id, sp.label, sp.head.stratum, false)
	}
	clear(rt.ruleProf)
	return out
}

// RelMemStats is one relation's share of the engine's memory, estimated
// from maintained byte counters (key/record encodings) plus fixed
// per-entry overheads — cheap enough to snapshot per transaction.
type RelMemStats struct {
	Name      string `json:"name"`
	Hidden    bool   `json:"hidden,omitempty"`
	Stratum   int    `json:"stratum"`
	Recursive bool   `json:"recursive,omitempty"`
	Tuples    int    `json:"tuples"`
	Indexes   int    `json:"indexes"`
	// IndexEntries estimates tuple references held by arrangements
	// (present tuples × arrangements).
	IndexEntries int `json:"index_entries"`
	// Bytes estimates the relation's resident footprint: canonical key
	// strings (once in the counts map, once per arrangement bucket),
	// record headers, and map-entry overheads.
	Bytes int64 `json:"bytes"`
}

// ProvMemStats estimates the provenance store's share.
type ProvMemStats struct {
	Facts int   `json:"facts"`
	Bytes int64 `json:"bytes"`
}

// MemStats is the engine-wide memory accounting snapshot.
type MemStats struct {
	Relations    []RelMemStats `json:"relations"`
	Tuples       int           `json:"tuples"`
	IndexEntries int           `json:"index_entries"`
	Bytes        int64         `json:"bytes"`
	Provenance   ProvMemStats  `json:"provenance"`
}

// Per-entry overhead estimates (bytes): a counts/bucket map entry costs
// roughly a bucket slot plus the string header; a record header is 24
// bytes plus 16 per value.
const (
	memEntryOverhead = 48
	memValueSize     = 16
	memRecordHeader  = 24
)

// MemoryStats reports the per-relation memory accounting snapshot. It
// runs in O(#relations) off maintained counters; callers must hold the
// apply goroutine (relation state is not locked).
func (rt *Runtime) MemoryStats() MemStats {
	st := MemStats{Relations: make([]RelMemStats, 0, len(rt.rels))}
	for _, rs := range rt.rels {
		tuples := len(rs.counts)
		nix := len(rs.indexList)
		recBytes := int64(tuples) * (memRecordHeader + memValueSize*int64(len(rs.rel.Cols)))
		// Key strings are stored once in counts and once per arrangement
		// bucket entry; each such entry adds map overhead.
		bytes := (rs.keyBytes+int64(tuples)*memEntryOverhead)*int64(1+nix) + recBytes
		rm := RelMemStats{
			Name:         rs.rel.Name,
			Hidden:       rs.hidden,
			Stratum:      rs.stratum,
			Recursive:    rs.recursive,
			Tuples:       tuples,
			Indexes:      nix,
			IndexEntries: tuples * nix,
			Bytes:        bytes,
		}
		st.Relations = append(st.Relations, rm)
		st.Tuples += rm.Tuples
		st.IndexEntries += rm.IndexEntries
		st.Bytes += rm.Bytes
	}
	if rt.prov != nil {
		rt.prov.mu.Lock()
		facts := rt.prov.live
		// Arena slots dominate; each live fact additionally carries its
		// derivation list and record reference.
		bytes := int64(len(rt.prov.arena))*96 + int64(len(rt.prov.facts.slots))*16 +
			int64(facts)*64
		rt.prov.mu.Unlock()
		st.Provenance = ProvMemStats{Facts: facts, Bytes: bytes}
		st.Bytes += bytes
	}
	return st
}
