package engine

import (
	"fmt"
	"testing"
)

func TestCollectStatsOff(t *testing.T) {
	rt := newRT(t, projSrc)
	apply(t, rt, Insert("In", strRec("x", "y")))
	if rt.LastApplyStats() != nil {
		t.Fatalf("stats collected with CollectStats unset")
	}
}

func TestCollectStats(t *testing.T) {
	rt, err := New(compile(t, projSrc), Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	apply(t, rt, Insert("In", strRec("x", "y")))
	st := rt.LastApplyStats()
	if st == nil {
		t.Fatalf("no stats with CollectStats set")
	}
	if len(st.Strata) != rt.NumStrata() {
		t.Fatalf("stats cover %d strata, runtime has %d", len(st.Strata), rt.NumStrata())
	}
	if st.DeltaSize != 1 {
		t.Fatalf("DeltaSize = %d, want 1", st.DeltaSize)
	}
	if st.Derivations < 1 {
		t.Fatalf("Derivations = %d, want >= 1", st.Derivations)
	}
	var jobs int
	for _, ss := range st.Strata {
		jobs += ss.Jobs
	}
	if jobs < 1 {
		t.Fatalf("no jobs counted: %+v", st.Strata)
	}
}

func TestCollectStatsParallelWorkerBusy(t *testing.T) {
	rt, err := New(compile(t, `
		input relation In(a: string, b: string)
		output relation Out(b: string, a: string)
		Out(b, a) :- In(a, b).
	`), Options{Workers: 4, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	// Enough updates to cross minParallelJobs and engage the pool.
	ups := make([]Update, 0, 64)
	for i := 0; i < 64; i++ {
		ups = append(ups, Insert("In", strRec(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))))
	}
	apply(t, rt, ups...)
	st := rt.LastApplyStats()
	if st == nil || st.Workers != 4 || len(st.WorkerBusy) != 4 {
		t.Fatalf("stats = %+v", st)
	}
	var busy bool
	for _, d := range st.WorkerBusy {
		if d > 0 {
			busy = true
		}
	}
	if !busy {
		t.Fatalf("no worker busy time recorded: %v", st.WorkerBusy)
	}
	if st.DeltaSize != 64 {
		t.Fatalf("DeltaSize = %d, want 64", st.DeltaSize)
	}
}
