package engine

import (
	"fmt"

	"repro/internal/dl/typecheck"
	"repro/internal/dl/value"
)

// A plan evaluates one rule seeded from a specific body literal occurrence
// (or from the rule head, or from nothing for "unit" rules). Plans are the
// differentiated form of a rule: feeding a delta tuple into the seed and
// joining the remaining literals against the appropriate database views
// yields exactly that occurrence's contribution to the head delta.
type plan struct {
	rule    *compiledRule
	seedIdx int // body index of the seed literal; -1 for unit/check plans
	// Seed binding: how the seed tuple (or negation key, or head tuple)
	// binds environment slots and which columns must match expressions.
	seedBinds  []colBind
	seedChecks []colCheck
	steps      []planStep
	envSize    int
}

// colBind binds environment slot Slot from position Col of the seed tuple
// or a join result tuple.
type colBind struct {
	Col  int
	Slot int
}

// colCheck requires position Col of a tuple to equal the value of Expr.
type colCheck struct {
	Col  int
	Expr typecheck.Expr
}

// planStep is one execution step: *stepJoin, *stepFilter, *stepAssign, or
// *stepAbsent.
type planStep interface{ planStep() }

// stepJoin scans the chosen view of a relation restricted to the computed
// index key, binding new slots from each matching tuple.
type stepJoin struct {
	rel     *relState
	bodyIdx int
	ix      *index
	// keyExprs, aligned with ix.keyCols, compute the lookup key.
	keyExprs []typecheck.Expr
	binds    []colBind
	checks   []colCheck // per-tuple equality checks not usable as key parts
}

// stepFilter evaluates a boolean expression and prunes the branch on false.
type stepFilter struct {
	expr typecheck.Expr
}

// stepAssign evaluates an expression into a fresh slot.
type stepAssign struct {
	slot int
	expr typecheck.Expr
}

// stepAbsent requires the chosen view of a relation to contain no tuple
// matching the computed key (a negated literal).
type stepAbsent struct {
	rel      *relState
	bodyIdx  int
	ix       *index
	keyExprs []typecheck.Expr
}

func (*stepJoin) planStep()   {}
func (*stepFilter) planStep() {}
func (*stepAssign) planStep() {}
func (*stepAbsent) planStep() {}

// compiledRule is a rule prepared for incremental evaluation.
type compiledRule struct {
	src       *typecheck.Rule
	head      *relState
	headExprs []typecheck.Expr
	// label is the rule's operator-facing identity in provenance records;
	// labelHash is its precomputed sig-hash seed (provLabelHash).
	label     string
	labelHash uint64
	// idx/id place the rule in the rule-profiling accumulator space
	// (profile.go; zero values unless CollectRuleStats).
	idx   int
	id    string
	body  []typecheck.Term // excludes any GroupBy term
	slots []typecheck.VarInfo
	// plansByBody[i] is the plan seeded at body literal i (nil for
	// non-literal terms).
	plansByBody []*plan
	// unitPlan evaluates the rule with no seed (rules without positive
	// literals); nil otherwise.
	unitPlan *plan
	// checkPlan decides whether a given head tuple is derivable by this
	// rule (pattern heads only); used by DRed rederivation.
	checkPlan *plan
}

// negKeyCols returns the sorted column indexes a negated literal is
// constrained on (its check columns).
func negKeyCols(lit *typecheck.LiteralTerm) []int {
	cols := make([]int, 0, len(lit.Checks))
	for _, c := range lit.Checks {
		cols = append(cols, c.Col)
	}
	// Checks are produced in column order by the type checker.
	return cols
}

// planBuilder constructs a plan for one seeding of a rule.
type planBuilder struct {
	rt    *Runtime
	rule  *compiledRule
	bound []bool
	// extraSlots counts hidden slots appended beyond the rule's own.
	extraSlots int
	steps      []planStep
	// remaining body indexes still to be planned.
	remaining map[int]bool
	// pending are filters (equations) awaiting their variables.
	pending []typecheck.Expr
}

func newPlanBuilder(rt *Runtime, rule *compiledRule) *planBuilder {
	b := &planBuilder{
		rt:        rt,
		rule:      rule,
		bound:     make([]bool, len(rule.slots)),
		remaining: make(map[int]bool, len(rule.body)),
	}
	for i := range rule.body {
		b.remaining[i] = true
	}
	return b
}

func (b *planBuilder) slotType(slot int) *value.Type {
	if slot < len(b.rule.slots) {
		return b.rule.slots[slot].Type
	}
	return nil // hidden slots: type is implied by the column they bind
}

// hiddenSlot allocates a fresh slot beyond the rule's declared ones.
func (b *planBuilder) hiddenSlot() int {
	s := len(b.rule.slots) + b.extraSlots
	b.extraSlots++
	b.bound = append(b.bound, false)
	return s
}

func (b *planBuilder) markBound(slot int) { b.bound[slot] = true }

// exprReady reports whether every variable of e is bound.
func (b *planBuilder) exprReady(e typecheck.Expr) bool {
	ready := true
	walkVars(e, func(v *typecheck.VarRef) {
		if v.Slot >= len(b.bound) || !b.bound[v.Slot] {
			ready = false
		}
	})
	return ready
}

// walkVars visits every VarRef in an expression tree.
func walkVars(e typecheck.Expr, f func(*typecheck.VarRef)) {
	switch e := e.(type) {
	case *typecheck.VarRef:
		f(e)
	case *typecheck.Const:
	case *typecheck.BinOp:
		walkVars(e.L, f)
		walkVars(e.R, f)
	case *typecheck.Cmp:
		walkVars(e.L, f)
		walkVars(e.R, f)
	case *typecheck.UnOp:
		walkVars(e.E, f)
	case *typecheck.FieldGet:
		walkVars(e.E, f)
	case *typecheck.MkTuple:
		for _, el := range e.Elems {
			walkVars(el, f)
		}
	case *typecheck.CastOp:
		walkVars(e.E, f)
	case *typecheck.IfOp:
		walkVars(e.Cond, f)
		walkVars(e.Then, f)
		walkVars(e.Else, f)
	case *typecheck.CallOp:
		for _, a := range e.Args {
			walkVars(a, f)
		}
	case *typecheck.FuncCall:
		// Only the arguments reference this rule's environment; the body's
		// variables are the function's own parameter slots.
		for _, a := range e.Args {
			walkVars(a, f)
		}
	default:
		panic(fmt.Sprintf("engine: walkVars: unexpected expression %T", e))
	}
}

// eq builds the equality filter l == r.
func eq(l, r typecheck.Expr) typecheck.Expr { return &typecheck.Cmp{Op: "==", L: l, R: r} }

// headIsPattern reports whether every head expression is a plain variable
// or constant, making the head invertible for rederivation checks.
func headIsPattern(exprs []typecheck.Expr) bool {
	for _, e := range exprs {
		switch e.(type) {
		case *typecheck.VarRef, *typecheck.Const:
		default:
			return false
		}
	}
	return true
}

// bindSeedLiteral sets up seed binding for a positive literal occurrence.
func (b *planBuilder) bindSeedLiteral(lit *typecheck.LiteralTerm) (binds []colBind, checks []colCheck) {
	for col, slot := range lit.BindSlots {
		if slot >= 0 {
			binds = append(binds, colBind{Col: col, Slot: slot})
			b.markBound(slot)
		}
	}
	for _, chk := range lit.Checks {
		if vr, ok := chk.Expr.(*typecheck.VarRef); ok && !b.bound[vr.Slot] {
			// Unbound plain variable: binding, not check.
			binds = append(binds, colBind{Col: chk.Col, Slot: vr.Slot})
			b.markBound(vr.Slot)
			continue
		}
		if b.exprReady(chk.Expr) {
			checks = append(checks, colCheck{Col: chk.Col, Expr: chk.Expr})
			continue
		}
		// Expression over variables bound later: capture the column into a
		// hidden slot and defer the equation.
		h := b.hiddenSlot()
		binds = append(binds, colBind{Col: chk.Col, Slot: h})
		b.markBound(h)
		b.pending = append(b.pending, eq(chk.Expr, &typecheck.VarRef{Slot: h, T: chk.Expr.Type()}))
	}
	return binds, checks
}

// bindSeedNegation sets up seed binding from a negation transition key.
// Key positions follow negKeyCols order.
func (b *planBuilder) bindSeedNegation(lit *typecheck.LiteralTerm) (binds []colBind, checks []colCheck) {
	for pos, chk := range lit.Checks {
		if vr, ok := chk.Expr.(*typecheck.VarRef); ok && !b.bound[vr.Slot] {
			binds = append(binds, colBind{Col: pos, Slot: vr.Slot})
			b.markBound(vr.Slot)
			continue
		}
		if b.exprReady(chk.Expr) {
			checks = append(checks, colCheck{Col: pos, Expr: chk.Expr})
			continue
		}
		h := b.hiddenSlot()
		binds = append(binds, colBind{Col: pos, Slot: h})
		b.markBound(h)
		b.pending = append(b.pending, eq(chk.Expr, &typecheck.VarRef{Slot: h, T: chk.Expr.Type()}))
	}
	return binds, checks
}

// bindSeedHead sets up seed binding from a head tuple (check plans).
// The head must be a pattern (VarRef/Const arguments only).
func (b *planBuilder) bindSeedHead() (binds []colBind, checks []colCheck) {
	for col, e := range b.rule.headExprs {
		switch e := e.(type) {
		case *typecheck.VarRef:
			if !b.bound[e.Slot] {
				binds = append(binds, colBind{Col: col, Slot: e.Slot})
				b.markBound(e.Slot)
			} else {
				checks = append(checks, colCheck{Col: col, Expr: e})
			}
		case *typecheck.Const:
			checks = append(checks, colCheck{Col: col, Expr: e})
		default:
			panic("engine: bindSeedHead on non-pattern head")
		}
	}
	return binds, checks
}

// finish plans the remaining body terms greedily and returns the plan.
func (b *planBuilder) finish(seedIdx int, seedBinds []colBind, seedChecks []colCheck) (*plan, error) {
	delete(b.remaining, seedIdx)
	for {
		if b.flushReady() {
			continue
		}
		// Choose the next positive literal to join: the one with the most
		// key columns available, leftmost on ties.
		best, bestScore := -1, -1
		for idx := range b.remaining {
			lit, ok := b.rule.body[idx].(*typecheck.LiteralTerm)
			if !ok || lit.Negated {
				continue
			}
			score := b.joinScore(lit)
			if score > bestScore || score == bestScore && (best == -1 || idx < best) {
				best, bestScore = idx, score
			}
		}
		if best == -1 {
			break
		}
		b.emitJoin(best)
	}
	if len(b.remaining) > 0 || len(b.pending) > 0 {
		return nil, fmt.Errorf("engine: internal error: rule for %s is not plannable (unsafe rule admitted by type checker)",
			b.rule.head.rel.Name)
	}
	// Head expressions must be fully bound now.
	for _, e := range b.rule.headExprs {
		if !b.exprReady(e) {
			return nil, fmt.Errorf("engine: internal error: unbound variable in head of rule for %s",
				b.rule.head.rel.Name)
		}
	}
	return &plan{
		rule:       b.rule,
		seedIdx:    seedIdx,
		seedBinds:  seedBinds,
		seedChecks: seedChecks,
		steps:      b.steps,
		envSize:    len(b.rule.slots) + b.extraSlots,
	}, nil
}

// flushReady emits every currently-evaluable filter, assignment, pending
// equation, and negated literal. Reports whether anything was emitted.
func (b *planBuilder) flushReady() bool {
	emitted := false
	// Pending equations.
	var stillPending []typecheck.Expr
	for _, e := range b.pending {
		if b.exprReady(e) {
			b.steps = append(b.steps, &stepFilter{expr: e})
			emitted = true
		} else {
			stillPending = append(stillPending, e)
		}
	}
	b.pending = stillPending
	for idx := 0; idx < len(b.rule.body); idx++ {
		if !b.remaining[idx] {
			continue
		}
		switch term := b.rule.body[idx].(type) {
		case *typecheck.CondTerm:
			if b.exprReady(term.Expr) {
				b.steps = append(b.steps, &stepFilter{expr: term.Expr})
				delete(b.remaining, idx)
				emitted = true
			}
		case *typecheck.AssignTerm:
			if !b.exprReady(term.Expr) {
				continue
			}
			if b.bound[term.Slot] {
				// The target was already bound (e.g. by the seed); the
				// assignment becomes an equation.
				b.steps = append(b.steps, &stepFilter{expr: eq(term.Expr,
					&typecheck.VarRef{Slot: term.Slot, T: term.Expr.Type()})})
			} else {
				b.steps = append(b.steps, &stepAssign{slot: term.Slot, expr: term.Expr})
				b.markBound(term.Slot)
			}
			delete(b.remaining, idx)
			emitted = true
		case *typecheck.LiteralTerm:
			if !term.Negated {
				continue
			}
			ready := true
			for _, chk := range term.Checks {
				if !b.exprReady(chk.Expr) {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			keyExprs := make([]typecheck.Expr, len(term.Checks))
			for i, chk := range term.Checks {
				keyExprs[i] = chk.Expr
			}
			rel := b.rt.relStateOf(term.Rel)
			b.steps = append(b.steps, &stepAbsent{
				rel:      rel,
				bodyIdx:  idx,
				ix:       rel.getIndex(negKeyCols(term)),
				keyExprs: keyExprs,
			})
			delete(b.remaining, idx)
			emitted = true
		}
	}
	return emitted
}

// joinScore ranks how attractive joining lit next is: primarily the number
// of columns that can serve as index key parts, with a tie-break that
// prefers relations from lower strata over relations in the head's own
// (recursive) stratum — recursive relations hold transitive closures and
// tend to be far larger than their generating context relations, so
// probing the context first keeps rederivation checks local.
func (b *planBuilder) joinScore(lit *typecheck.LiteralTerm) int {
	score := 0
	for _, slot := range lit.BindSlots {
		if slot >= 0 && b.bound[slot] {
			score++
		}
	}
	for _, chk := range lit.Checks {
		if b.exprReady(chk.Expr) {
			score++
		}
	}
	score *= 2
	if b.rt.relStateOf(lit.Rel).stratum < b.rule.head.stratum {
		score++
	}
	return score
}

// emitJoin plans positive literal idx as a join step.
func (b *planBuilder) emitJoin(idx int) {
	lit := b.rule.body[idx].(*typecheck.LiteralTerm)
	var keyCols []int
	var keyExprs []typecheck.Expr
	var binds []colBind
	var checks []colCheck
	for col, slot := range lit.BindSlots {
		if slot < 0 {
			continue
		}
		if b.bound[slot] {
			keyCols = append(keyCols, col)
			keyExprs = append(keyExprs, &typecheck.VarRef{Slot: slot, T: lit.Rel.Cols[col].Type})
		} else {
			binds = append(binds, colBind{Col: col, Slot: slot})
			b.markBound(slot)
		}
	}
	for _, chk := range lit.Checks {
		switch {
		case b.exprReady(chk.Expr):
			keyCols = append(keyCols, chk.Col)
			keyExprs = append(keyExprs, chk.Expr)
		default:
			if vr, ok := chk.Expr.(*typecheck.VarRef); ok && !b.bound[vr.Slot] {
				binds = append(binds, colBind{Col: chk.Col, Slot: vr.Slot})
				b.markBound(vr.Slot)
				continue
			}
			h := b.hiddenSlot()
			binds = append(binds, colBind{Col: chk.Col, Slot: h})
			b.markBound(h)
			b.pending = append(b.pending, eq(chk.Expr, &typecheck.VarRef{Slot: h, T: chk.Expr.Type()}))
		}
	}
	// Key expressions must align with the index's sorted column order.
	sortKeyByCols(keyCols, keyExprs)
	rel := b.rt.relStateOf(lit.Rel)
	b.steps = append(b.steps, &stepJoin{
		rel:      rel,
		bodyIdx:  idx,
		ix:       rel.getIndex(keyCols),
		keyExprs: keyExprs,
		binds:    binds,
		checks:   checks,
	})
	delete(b.remaining, idx)
}

// sortKeyByCols co-sorts keyExprs by ascending column index (insertion
// sort; keys are tiny).
func sortKeyByCols(cols []int, exprs []typecheck.Expr) {
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && cols[j-1] > cols[j]; j-- {
			cols[j-1], cols[j] = cols[j], cols[j-1]
			exprs[j-1], exprs[j] = exprs[j], exprs[j-1]
		}
	}
}

// buildPlans constructs all plans for a compiled rule.
func (rt *Runtime) buildPlans(rule *compiledRule) error {
	rule.plansByBody = make([]*plan, len(rule.body))
	hasPositive := false
	for idx, term := range rule.body {
		lit, ok := term.(*typecheck.LiteralTerm)
		if !ok {
			continue
		}
		b := newPlanBuilder(rt, rule)
		var binds []colBind
		var checks []colCheck
		if lit.Negated {
			binds, checks = b.bindSeedNegation(lit)
			// Ensure the transition-detection index exists.
			rt.relStateOf(lit.Rel).getIndex(negKeyCols(lit))
		} else {
			hasPositive = true
			binds, checks = b.bindSeedLiteral(lit)
		}
		p, err := b.finish(idx, binds, checks)
		if err != nil {
			return err
		}
		rule.plansByBody[idx] = p
	}
	if !hasPositive {
		b := newPlanBuilder(rt, rule)
		p, err := b.finish(-1, nil, nil)
		if err != nil {
			return err
		}
		rule.unitPlan = p
	}
	if rule.head.recursive {
		if !headIsPattern(rule.headExprs) {
			return fmt.Errorf(
				"engine: rule for recursive relation %s must have a pattern head (plain variables or constants)",
				rule.head.rel.Name)
		}
		b := newPlanBuilder(rt, rule)
		binds, checks := b.bindSeedHead()
		p, err := b.finish(-1, binds, checks)
		if err != nil {
			return err
		}
		rule.checkPlan = p
	}
	return nil
}
