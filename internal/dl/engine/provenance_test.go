package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/dl/value"
)

func newProvRT(t *testing.T, src string, opts Options) *Runtime {
	t.Helper()
	opts.CollectProvenance = true
	rt, err := New(compile(t, src), opts)
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	return rt
}

// wideExplain removes the tree bounds from the equation.
var wideExplain = ExplainOptions{MaxDepth: 1 << 10, MaxNodes: 1 << 16}

// leaves walks a tree collecting input leaves; it reports whether the tree
// is a complete proof (no unknown, cycle, or truncated nodes).
func leaves(n *ExplainNode, out map[string][]value.Record) bool {
	switch n.Kind {
	case "input":
		out[n.Relation] = append(out[n.Relation], n.Tuple)
		return true
	case "derived":
		if n.Truncated {
			return false
		}
		for _, c := range n.Children {
			if !leaves(c, out) {
				return false
			}
		}
		return true
	default: // unknown, cycle
		return false
	}
}

func TestProvenanceExplainBasic(t *testing.T) {
	rt := newProvRT(t, `
		input relation R(a: int, b: int)
		input relation S(b: int, c: int)
		output relation O(a: int, c: int)
		O(a, c) :- R(a, b), S(b, c).
	`, Options{})
	apply(t, rt,
		Insert("R", value.Record{value.Int(1), value.Int(2)}),
		Insert("S", value.Record{value.Int(2), value.Int(3)}))
	fact := value.Record{value.Int(1), value.Int(3)}
	n, ok := rt.Explain("O", fact, ExplainOptions{})
	if !ok {
		t.Fatal("derived fact has no provenance")
	}
	if n.Kind != "derived" || n.Rule != "O :- R(..), S(..)" || n.Stratum != rt.relByName["O"].stratum {
		t.Fatalf("root = %+v", n)
	}
	if len(n.Children) != 2 {
		t.Fatalf("want 2 input leaves, got %+v", n.Children)
	}
	seen := map[string]string{}
	for _, c := range n.Children {
		if c.Kind != "input" {
			t.Fatalf("leaf kind = %q, want input", c.Kind)
		}
		seen[c.Relation] = c.Record
	}
	if seen["R"] != "(1, 2)" || seen["S"] != "(2, 3)" {
		t.Fatalf("leaves = %v", seen)
	}

	// Input relations are not explainable through the engine.
	if _, ok := rt.Explain("R", value.Record{value.Int(1), value.Int(2)}, ExplainOptions{}); ok {
		t.Fatal("input fact should not be explainable")
	}

	// ExplainRendered resolves the printed form.
	if _, ok := rt.ExplainRendered("O", "(1, 3)", ExplainOptions{}); !ok {
		t.Fatal("ExplainRendered missed the fact")
	}
	if _, ok := rt.ExplainRendered("O", "(9, 9)", ExplainOptions{}); ok {
		t.Fatal("ExplainRendered found a ghost")
	}

	// Retraction drops provenance.
	apply(t, rt, Delete("R", value.Record{value.Int(1), value.Int(2)}))
	if _, ok := rt.Explain("O", fact, ExplainOptions{}); ok {
		t.Fatal("retracted fact still explainable")
	}
	if st := rt.ProvenanceStats(); st.Facts != 0 {
		t.Fatalf("store still holds %d facts", st.Facts)
	}
}

func TestProvenanceAlternativeDerivations(t *testing.T) {
	rt := newProvRT(t, `
		input relation A(x: string)
		input relation B(x: string)
		output relation O(x: string)
		O(x) :- A(x).
		O(x) :- B(x).
	`, Options{})
	apply(t, rt, Insert("A", strRec("v")), Insert("B", strRec("v")))
	n, ok := rt.Explain("O", strRec("v"), ExplainOptions{})
	if !ok || n.Alternatives != 1 {
		t.Fatalf("want 1 alternative, got %+v (ok=%v)", n, ok)
	}
	// Removing one derivation keeps the fact and the other explanation.
	apply(t, rt, Delete("A", strRec("v")))
	n, ok = rt.Explain("O", strRec("v"), ExplainOptions{})
	if !ok || n.Alternatives != 0 || n.Rule != "O :- B(..)" {
		t.Fatalf("after delete: %+v (ok=%v)", n, ok)
	}
}

func TestProvenanceNegationAndExprs(t *testing.T) {
	rt := newProvRT(t, `
		input relation A(x: int)
		input relation Block(x: int)
		output relation O(y: int)
		O(x + 1) :- A(x), not Block(x), x > 0.
	`, Options{})
	apply(t, rt, Insert("A", value.Record{value.Int(4)}))
	n, ok := rt.Explain("O", value.Record{value.Int(5)}, ExplainOptions{})
	if !ok {
		t.Fatal("no provenance")
	}
	// The only input leaf is the positive literal; the negation and the
	// condition contribute no facts.
	if len(n.Children) != 1 || n.Children[0].Relation != "A" || n.Children[0].Record != "(4)" {
		t.Fatalf("children = %+v", n.Children)
	}
	// A Block insertion retracts the fact and its provenance.
	apply(t, rt, Insert("Block", value.Record{value.Int(4)}))
	if _, ok := rt.Explain("O", value.Record{value.Int(5)}, ExplainOptions{}); ok {
		t.Fatal("negation-retracted fact still explainable")
	}
	// And removing the blocker re-derives and re-records.
	apply(t, rt, Delete("Block", value.Record{value.Int(4)}))
	if _, ok := rt.Explain("O", value.Record{value.Int(5)}, ExplainOptions{}); !ok {
		t.Fatal("re-derived fact lost its provenance")
	}
}

func TestProvenanceAggregate(t *testing.T) {
	rt := newProvRT(t, `
		input relation Sale(region: string, item: string, amount: int)
		output relation Total(region: string, total: int)
		Total(r, s) :- Sale(r, i, a), var s = sum(a) group_by (r).
	`, Options{})
	apply(t, rt,
		Insert("Sale", value.Record{value.String("eu"), value.String("a"), value.Int(2)}),
		Insert("Sale", value.Record{value.String("eu"), value.String("b"), value.Int(3)}))
	n, ok := rt.Explain("Total", value.Record{value.String("eu"), value.Int(5)}, wideExplain)
	if !ok {
		t.Fatal("aggregate fact has no provenance")
	}
	// The aggregate's inputs are the group bucket (hidden relation facts),
	// each of which derives from one Sale row.
	got := make(map[string][]value.Record)
	if !leaves(n, got) {
		t.Fatalf("incomplete proof: %+v", n)
	}
	if len(got["Sale"]) != 2 {
		t.Fatalf("leaves = %v", got)
	}
	// Re-aggregation after a delete replaces the derivation.
	apply(t, rt, Delete("Sale", value.Record{value.String("eu"), value.String("b"), value.Int(3)}))
	if _, ok := rt.Explain("Total", value.Record{value.String("eu"), value.Int(5)}, wideExplain); ok {
		t.Fatal("stale total still explainable")
	}
	n, ok = rt.Explain("Total", value.Record{value.String("eu"), value.Int(2)}, wideExplain)
	if !ok {
		t.Fatal("new total has no provenance")
	}
	got = make(map[string][]value.Record)
	if !leaves(n, got) || len(got["Sale"]) != 1 {
		t.Fatalf("new total leaves = %v", got)
	}
}

func TestProvenanceEviction(t *testing.T) {
	rt := newProvRT(t, projSrc, Options{ProvenanceCapacity: 8})
	for i := 0; i < 32; i++ {
		apply(t, rt, Insert("In", strRec(fmt.Sprint(i), fmt.Sprint(i))))
	}
	st := rt.ProvenanceStats()
	if st.Facts > 8 {
		t.Fatalf("store exceeded capacity: %+v", st)
	}
	if st.Evictions != 32-8 {
		t.Fatalf("evictions = %d, want %d", st.Evictions, 32-8)
	}
	// Oldest facts evicted, newest retained.
	if _, ok := rt.Explain("Out", strRec("0", "0"), ExplainOptions{}); ok {
		t.Fatal("evicted fact still explainable")
	}
	if _, ok := rt.Explain("Out", strRec("31", "31"), ExplainOptions{}); !ok {
		t.Fatal("recent fact lost")
	}
}

const reachProvSrc = `
input relation Edge(a: string, b: string)
output relation Reach(a: string, b: string)
Reach(a, b) :- Edge(a, b).
Reach(a, c) :- Reach(a, b), Edge(b, c).
`

// TestProvenanceRecursive pins DRed interaction: overdeleted facts lose
// their provenance, rederived ones regain a valid proof, and every tree
// stays acyclic. Runs the sequential, parallel, and fallback variants.
func TestProvenanceRecursive(t *testing.T) {
	for _, opts := range []Options{
		{},
		{Workers: 4},
		{Workers: 4, RecursiveDeleteFallback: 0.5},
	} {
		t.Run(fmt.Sprintf("workers=%d,fallback=%v", opts.Workers, opts.RecursiveDeleteFallback), func(t *testing.T) {
			rt := newProvRT(t, reachProvSrc, opts)
			apply(t, rt,
				Insert("Edge", strRec("a", "b")),
				Insert("Edge", strRec("b", "c")),
				Insert("Edge", strRec("c", "d")),
				Insert("Edge", strRec("a", "c"))) // alternate route to c
			n, ok := rt.Explain("Reach", strRec("a", "d"), wideExplain)
			if !ok {
				t.Fatal("no provenance for reach fact")
			}
			got := make(map[string][]value.Record)
			if !leaves(n, got) {
				t.Fatalf("incomplete proof: %+v", n)
			}
			if len(got["Edge"]) == 0 {
				t.Fatalf("no Edge leaves: %v", got)
			}
			// Deleting b→c leaves a–c–d reachable via the alternate edge;
			// the surviving fact must still have a valid (rederived) proof.
			apply(t, rt, Delete("Edge", strRec("b", "c")))
			n, ok = rt.Explain("Reach", strRec("a", "d"), wideExplain)
			if !ok {
				t.Fatal("rederived fact lost provenance")
			}
			got = make(map[string][]value.Record)
			if !leaves(n, got) {
				t.Fatalf("incomplete rederived proof: %+v", n)
			}
			for _, e := range got["Edge"] {
				if e.String() == `("b", "c")` {
					t.Fatal("proof uses a deleted edge")
				}
			}
			// Cutting the alternate edge retracts a→d for good.
			apply(t, rt, Delete("Edge", strRec("a", "c")))
			if _, ok := rt.Explain("Reach", strRec("a", "d"), wideExplain); ok {
				t.Fatal("retracted reach fact still explainable")
			}
		})
	}
}

// TestProvenanceVsNaive is the property test: for every fact in every
// derived relation, the explained proof tree must be self-contained — the
// naive evaluator, fed only the tree's input leaves, re-derives the fact.
// Retracted facts must become unexplainable.
func TestProvenanceVsNaive(t *testing.T) {
	cases := []struct {
		name string
		src  string
		gen  func(r *rand.Rand, insert bool) Update
	}{
		{
			name: "reach",
			src:  reachProvSrc,
			gen: func(r *rand.Rand, insert bool) Update {
				rec := strRec(fmt.Sprint(r.Intn(8)), fmt.Sprint(r.Intn(8)))
				return Update{Relation: "Edge", Rec: rec, Insert: insert}
			},
		},
		{
			name: "join-negation",
			src: `
				input relation A(x: int, y: int)
				input relation B(y: int, z: int)
				input relation Block(x: int)
				output relation O(x: int, z: int)
				O(x, z) :- A(x, y), B(y, z), not Block(x).
			`,
			gen: func(r *rand.Rand, insert bool) Update {
				switch r.Intn(5) {
				case 0:
					return Update{Relation: "Block", Rec: value.Record{value.Int(int64(r.Intn(6)))}, Insert: insert}
				case 1, 2:
					return Update{Relation: "B",
						Rec: value.Record{value.Int(int64(r.Intn(6))), value.Int(int64(r.Intn(6)))}, Insert: insert}
				default:
					return Update{Relation: "A",
						Rec: value.Record{value.Int(int64(r.Intn(6))), value.Int(int64(r.Intn(6)))}, Insert: insert}
				}
			},
		},
	}
	for _, tc := range cases {
		for _, workers := range []int{0, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				prog := compile(t, tc.src)
				rt, err := New(prog, Options{CollectProvenance: true, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				r := rand.New(rand.NewSource(7))
				outputs := func() map[string]map[string]value.Record {
					m := make(map[string]map[string]value.Record)
					for _, rel := range prog.Relations {
						if rel.Role.String() != "output" {
							continue
						}
						recs, err := rt.Contents(rel.Name)
						if err != nil {
							t.Fatal(err)
						}
						byKey := make(map[string]value.Record, len(recs))
						for _, rec := range recs {
							byKey[rec.Key()] = rec
						}
						m[rel.Name] = byKey
					}
					return m
				}
				prev := outputs()
				for txn := 0; txn < 60; txn++ {
					var ups []Update
					for i := 0; i < 1+r.Intn(6); i++ {
						ups = append(ups, tc.gen(r, r.Intn(3) > 0))
					}
					if _, err := rt.Apply(ups); err != nil {
						t.Fatalf("txn %d: %v", txn, err)
					}
					cur := outputs()
					for rel, byKey := range cur {
						for _, rec := range byKey {
							n, ok := rt.Explain(rel, rec, wideExplain)
							if !ok {
								t.Fatalf("txn %d: present fact %s%s unexplainable", txn, rel, rec)
							}
							inputs := make(map[string][]value.Record)
							if !leaves(n, inputs) {
								t.Fatalf("txn %d: incomplete proof for %s%s: %+v", txn, rel, rec, n)
							}
							want, err := NaiveEval(prog, inputs)
							if err != nil {
								t.Fatalf("txn %d: naive: %v", txn, err)
							}
							found := false
							for _, w := range want[rel] {
								if w.Equal(rec) {
									found = true
									break
								}
							}
							if !found {
								t.Fatalf("txn %d: proof of %s%s does not re-derive it; leaves=%v",
									txn, rel, rec, inputs)
							}
						}
					}
					// Every fact that left the relation must be unexplainable.
					for rel, byKey := range prev {
						for key, rec := range byKey {
							if _, still := cur[rel][key]; still {
								continue
							}
							if _, ok := rt.Explain(rel, rec, wideExplain); ok {
								t.Fatalf("txn %d: retracted fact %s%s still explainable", txn, rel, rec)
							}
						}
					}
					prev = cur
				}
			})
		}
	}
}

// TestProvenanceConcurrentExplainHammer drives Explain/ExplainRendered/
// ProvenanceStats from reader goroutines while transactions apply. Run
// under -race this pins the store-only read path: explaining never touches
// relation state.
func TestProvenanceConcurrentExplainHammer(t *testing.T) {
	prog := compile(t, reachProvSrc)
	rt, err := New(prog, Options{CollectProvenance: true, Workers: 4, ProvenanceCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := strRec(fmt.Sprint(r.Intn(8)), fmt.Sprint(r.Intn(8)))
				if n, ok := rt.Explain("Reach", rec, ExplainOptions{MaxDepth: 8, MaxNodes: 64}); ok {
					got := make(map[string][]value.Record)
					leaves(n, got)
				}
				rt.ExplainRendered("Reach", rec.String(), ExplainOptions{})
				rt.ProvenanceStats()
				runtime.Gosched() // let appliers make progress
			}
		}(g)
	}
	r := rand.New(rand.NewSource(42))
	for txn := 0; txn < 150; txn++ {
		var ups []Update
		for i := 0; i < 1+r.Intn(8); i++ {
			rec := strRec(fmt.Sprint(r.Intn(8)), fmt.Sprint(r.Intn(8)))
			ups = append(ups, Update{Relation: "Edge", Rec: rec, Insert: r.Intn(3) > 0})
		}
		if _, err := rt.Apply(ups); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestProvenanceOffZeroAlloc pins the gating contract: with
// CollectProvenance off, the arrangement probe path performs zero
// allocations — provenance costs exactly one boolean write per plan run.
func TestProvenanceOffZeroAlloc(t *testing.T) {
	rt, p, seed := probeSetup(t)
	if rt.ProvenanceEnabled() {
		t.Fatal("provenance unexpectedly enabled")
	}
	ctx := &evalCtx{}
	run := func() {
		if err := rt.runPlan(ctx, p, seed, "", 1, viewAllNew, discardEmit); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch buffers
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("provenance-off probe path allocates %.1f times per run, want 0", allocs)
	}
	if st := rt.ProvenanceStats(); st != (ProvenanceStats{}) {
		t.Fatalf("provenance stats nonzero with collection off: %+v", st)
	}
}
