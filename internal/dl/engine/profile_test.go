package engine

import (
	"fmt"
	"testing"

	"repro/internal/dl/value"
)

// twoRuleSrc has a cheap projection and a deliberately expensive
// self-join, so per-rule attribution has a clear ranking to find.
const twoRuleSrc = `
input relation In(a: string, b: string)
output relation Cheap(b: string, a: string)
output relation Hot(a: string, c: string)
Cheap(b, a) :- In(a, b).
Hot(a, c) :- In(a, b), In(c, b).
`

func TestRuleStatsOff(t *testing.T) {
	rt, err := New(compile(t, twoRuleSrc), Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	apply(t, rt, Insert("In", strRec("x", "y")))
	st := rt.LastApplyStats()
	if st == nil || st.Rules != nil {
		t.Fatalf("Rules = %+v with CollectRuleStats unset, want nil", st)
	}
	if rt.RuleInfos() != nil {
		t.Fatalf("RuleInfos non-nil with CollectRuleStats unset")
	}
}

func TestRuleStatsAttribution(t *testing.T) {
	rt, err := New(compile(t, twoRuleSrc), Options{CollectStats: true, CollectRuleStats: true})
	if err != nil {
		t.Fatal(err)
	}
	infos := rt.RuleInfos()
	if len(infos) != 2 {
		t.Fatalf("RuleInfos = %+v, want 2 rules", infos)
	}
	ids := map[string]bool{}
	for _, in := range infos {
		ids[in.ID] = true
		if in.Label == "" {
			t.Fatalf("rule %q has empty label", in.ID)
		}
	}
	if !ids["Cheap#0"] || !ids["Hot#0"] {
		t.Fatalf("rule IDs = %v, want Cheap#0 and Hot#0", ids)
	}

	var ups []Update
	for i := 0; i < 32; i++ {
		ups = append(ups, Insert("In", strRec(fmt.Sprintf("a%d", i), "join")))
	}
	apply(t, rt, ups...)
	st := rt.LastApplyStats()
	if st == nil || len(st.Rules) == 0 {
		t.Fatalf("no per-rule stats: %+v", st)
	}
	byID := map[string]RuleStats{}
	for _, r := range st.Rules {
		byID[r.ID] = r
	}
	cheap, hot := byID["Cheap#0"], byID["Hot#0"]
	// The projection derives one tuple per insert; the self-join derives
	// O(n^2) pairs. Attribution must reflect that asymmetry.
	if cheap.Derivations != 32 || cheap.DeltaTuples != 32 {
		t.Fatalf("Cheap#0 = %+v, want 32 derivations/delta tuples", cheap)
	}
	if hot.Derivations < 32*32 {
		t.Fatalf("Hot#0 derivations = %d, want >= 1024", hot.Derivations)
	}
	if hot.DeltaTuples != 32*32 {
		t.Fatalf("Hot#0 delta tuples = %d, want 1024", hot.DeltaTuples)
	}
	if cheap.Seedings == 0 || hot.Seedings == 0 {
		t.Fatalf("seedings not counted: cheap=%+v hot=%+v", cheap, hot)
	}
	if hot.Duration <= 0 {
		t.Fatalf("Hot#0 duration = %v, want > 0", hot.Duration)
	}

	// Deletions attribute too.
	apply(t, rt, Delete("In", strRec("a0", "join")))
	st = rt.LastApplyStats()
	byID = map[string]RuleStats{}
	for _, r := range st.Rules {
		byID[r.ID] = r
	}
	if byID["Cheap#0"].DeltaTuples != 1 {
		t.Fatalf("delete: Cheap#0 = %+v, want 1 delta tuple", byID["Cheap#0"])
	}
	// Removing one of 32 join keys retracts its row and column pairs:
	// 32 + 32 - 1 net transitions in Hot.
	if got := byID["Hot#0"].DeltaTuples; got != 63 {
		t.Fatalf("delete: Hot#0 delta tuples = %d, want 63", got)
	}
}

func TestRuleStatsParallelCounting(t *testing.T) {
	rt, err := New(compile(t, twoRuleSrc),
		Options{Workers: 4, CollectStats: true, CollectRuleStats: true})
	if err != nil {
		t.Fatal(err)
	}
	var ups []Update
	for i := 0; i < 64; i++ {
		ups = append(ups, Insert("In", strRec(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%4))))
	}
	apply(t, rt, ups...)
	st := rt.LastApplyStats()
	byID := map[string]RuleStats{}
	for _, r := range st.Rules {
		byID[r.ID] = r
	}
	if got := byID["Cheap#0"].DeltaTuples; got != 64 {
		t.Fatalf("parallel Cheap#0 delta tuples = %d, want 64", got)
	}
	// 4 join keys × 16×16 pairs.
	if got := byID["Hot#0"].DeltaTuples; got != 1024 {
		t.Fatalf("parallel Hot#0 delta tuples = %d, want 1024", got)
	}
	if byID["Hot#0"].Seedings == 0 || byID["Hot#0"].Duration <= 0 {
		t.Fatalf("parallel Hot#0 = %+v, want seedings and duration", byID["Hot#0"])
	}
}

const tcSrc = `
input relation Edge(x: string, y: string)
output relation Reach(x: string, y: string)
Reach(x, y) :- Edge(x, y).
Reach(x, z) :- Reach(x, y), Edge(y, z).
`

func TestRuleStatsRecursive(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rt, err := New(compile(t, tcSrc),
				Options{Workers: workers, CollectStats: true, CollectRuleStats: true})
			if err != nil {
				t.Fatal(err)
			}
			var ups []Update
			for i := 0; i < 40; i++ {
				ups = append(ups, Insert("Edge", strRec(fmt.Sprintf("n%02d", i), fmt.Sprintf("n%02d", i+1))))
			}
			apply(t, rt, ups...)
			st := rt.LastApplyStats()
			var base, rec RuleStats
			for _, r := range st.Rules {
				switch r.ID {
				case "Reach#0":
					base = r
				case "Reach#1":
					rec = r
				}
			}
			if base.DeltaTuples != 40 {
				t.Fatalf("base rule delta = %+v, want 40", base)
			}
			// A 40-edge chain closes to 40*41/2 pairs; the recursive rule
			// contributes everything beyond the base edges.
			if rec.DeltaTuples != 40*41/2-40 {
				t.Fatalf("recursive rule delta = %d, want %d", rec.DeltaTuples, 40*41/2-40)
			}
			if !rec.Recursive || rec.Stratum == 0 && base.Stratum != rec.Stratum {
				t.Fatalf("stratum attribution: base=%+v rec=%+v", base, rec)
			}
			if workers > 1 && rec.Rounds == 0 {
				t.Fatalf("recursive rule rounds = 0 with workers=%d", workers)
			}

			// Deleting the first edge retracts every pair starting at n00.
			apply(t, rt, Delete("Edge", strRec("n00", "n01")))
			st = rt.LastApplyStats()
			var total int64
			for _, r := range st.Rules {
				total += r.DeltaTuples
			}
			if total < 40 {
				t.Fatalf("delete attributed %d delta tuples, want >= 40 (%+v)", total, st.Rules)
			}
		})
	}
}

func TestRuleStatsAggregate(t *testing.T) {
	rt, err := New(compile(t, `
		input relation Item(k: string, v: int)
		output relation Total(k: string, n: int)
		Total(k, n) :- Item(k, v), var n = count() group_by (k).
	`), Options{CollectStats: true, CollectRuleStats: true})
	if err != nil {
		t.Fatal(err)
	}
	apply(t, rt,
		Insert("Item", value.Record{value.String("a"), value.Int(1)}),
		Insert("Item", value.Record{value.String("a"), value.Int(2)}),
		Insert("Item", value.Record{value.String("b"), value.Int(3)}))
	st := rt.LastApplyStats()
	var agg bool
	for _, r := range st.Rules {
		if r.ID == "Total#1" { // #0 is the hidden group rule
			agg = true
			if r.Seedings != 2 || r.DeltaTuples != 2 {
				t.Fatalf("aggregate stats = %+v, want 2 seedings (groups) and 2 delta tuples", r)
			}
			if r.Duration <= 0 {
				t.Fatalf("aggregate duration = %v, want > 0", r.Duration)
			}
		}
	}
	if !agg {
		t.Fatalf("no aggregate row in %+v", st.Rules)
	}
}

func TestMemoryStats(t *testing.T) {
	rt := newRT(t, twoRuleSrc)
	var ups []Update
	for i := 0; i < 16; i++ {
		ups = append(ups, Insert("In", strRec(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))))
	}
	apply(t, rt, ups...)
	ms := rt.MemoryStats()
	if ms.Tuples != rt.Stats().Tuples {
		t.Fatalf("MemoryStats tuples = %d, engine Stats = %d", ms.Tuples, rt.Stats().Tuples)
	}
	if ms.Bytes <= 0 {
		t.Fatalf("bytes estimate = %d, want > 0", ms.Bytes)
	}
	byName := map[string]RelMemStats{}
	for _, rm := range ms.Relations {
		byName[rm.Name] = rm
	}
	if byName["In"].Tuples != 16 || byName["Cheap"].Tuples != 16 || byName["Hot"].Tuples != 16 {
		t.Fatalf("per-relation tuples wrong: %+v", ms.Relations)
	}
	if byName["In"].Bytes <= 0 || byName["In"].IndexEntries != 16*byName["In"].Indexes {
		t.Fatalf("In accounting = %+v", byName["In"])
	}

	// Shrinks on deletion.
	before := ms.Bytes
	var dels []Update
	for i := 0; i < 16; i++ {
		dels = append(dels, Delete("In", strRec(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))))
	}
	apply(t, rt, dels...)
	ms = rt.MemoryStats()
	if ms.Tuples != 0 || ms.Bytes >= before {
		t.Fatalf("after delete: tuples=%d bytes=%d (before %d), want empty and smaller", ms.Tuples, ms.Bytes, before)
	}

	// Provenance share appears when collection is on.
	rtp, err := New(compile(t, twoRuleSrc), Options{CollectProvenance: true})
	if err != nil {
		t.Fatal(err)
	}
	apply(t, rtp, Insert("In", strRec("x", "y")))
	if ps := rtp.MemoryStats().Provenance; ps.Facts == 0 || ps.Bytes <= 0 {
		t.Fatalf("provenance share = %+v, want nonzero", ps)
	}
}

// TestRuleProfOffZeroAlloc guards the tentpole's budget: with
// CollectRuleStats off, the profiling hooks add no allocations to the
// plan-evaluation hot path (the only residue is a length check).
func TestRuleProfOffZeroAlloc(t *testing.T) {
	rt, p, seed := probeSetup(t)
	ctx := &evalCtx{}
	run := func() {
		if err := rt.runPlan(ctx, p, seed, "", 1, viewAllNew, discardEmit); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("plan evaluation with profiling off allocates %.1f times per run, want 0", allocs)
	}
}
