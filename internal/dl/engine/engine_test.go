package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dl/ast"
	"repro/internal/dl/parser"
	"repro/internal/dl/typecheck"
	"repro/internal/dl/value"
)

func compile(t *testing.T, src string) *typecheck.Program {
	t.Helper()
	ast, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := typecheck.Check(ast)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return prog
}

func newRT(t *testing.T, src string) *Runtime {
	t.Helper()
	rt, err := New(compile(t, src), Options{})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	return rt
}

func apply(t *testing.T, rt *Runtime, ups ...Update) Delta {
	t.Helper()
	d, err := rt.Apply(ups)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return d
}

func strRec(vals ...string) value.Record {
	r := make(value.Record, len(vals))
	for i, v := range vals {
		r[i] = value.String(v)
	}
	return r
}

func contents(t *testing.T, rt *Runtime, rel string) []string {
	t.Helper()
	recs, err := rt.Contents(rel)
	if err != nil {
		t.Fatalf("Contents(%s): %v", rel, err)
	}
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.String()
	}
	return out
}

func wantContents(t *testing.T, rt *Runtime, rel string, want ...string) {
	t.Helper()
	got := contents(t, rt, rel)
	if len(got) != len(want) {
		t.Fatalf("%s = %v, want %v", rel, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s = %v, want %v", rel, got, want)
		}
	}
}

const projSrc = `
input relation In(a: string, b: string)
output relation Out(b: string, a: string)
Out(b, a) :- In(a, b).
`

func TestProjectionInsertDelete(t *testing.T) {
	rt := newRT(t, projSrc)
	d := apply(t, rt, Insert("In", strRec("x", "y")))
	if d["Out"] == nil || d["Out"].Weight(strRec("y", "x")) != 1 {
		t.Fatalf("insert delta = %v", d)
	}
	wantContents(t, rt, "Out", `("y", "x")`)
	d = apply(t, rt, Delete("In", strRec("x", "y")))
	if d["Out"].Weight(strRec("y", "x")) != -1 {
		t.Fatalf("delete delta = %v", d)
	}
	wantContents(t, rt, "Out")
}

func TestIdempotentInsert(t *testing.T) {
	rt := newRT(t, projSrc)
	apply(t, rt, Insert("In", strRec("x", "y")))
	d := apply(t, rt, Insert("In", strRec("x", "y"))) // no-op
	if len(d) != 0 {
		t.Fatalf("re-insert delta = %v, want empty", d)
	}
	d = apply(t, rt, Delete("In", strRec("nope", "nope"))) // no-op
	if len(d) != 0 {
		t.Fatalf("bogus delete delta = %v, want empty", d)
	}
}

func TestJoinIncremental(t *testing.T) {
	rt := newRT(t, `
		input relation E(a: string, b: string)
		output relation Two(a: string, c: string)
		Two(a, c) :- E(a, b), E(b, c).
	`)
	apply(t, rt, Insert("E", strRec("1", "2")))
	wantContents(t, rt, "Two")
	apply(t, rt, Insert("E", strRec("2", "3")))
	wantContents(t, rt, "Two", `("1", "3")`)
	// Self-pair via a loop edge.
	apply(t, rt, Insert("E", strRec("3", "3")))
	wantContents(t, rt, "Two", `("1", "3")`, `("2", "3")`, `("3", "3")`)
	apply(t, rt, Delete("E", strRec("2", "3")))
	wantContents(t, rt, "Two", `("3", "3")`)
}

func TestMultipleDerivationsCounting(t *testing.T) {
	rt := newRT(t, `
		input relation A(x: string)
		input relation B(x: string)
		output relation O(x: string)
		O(x) :- A(x).
		O(x) :- B(x).
	`)
	apply(t, rt, Insert("A", strRec("v")), Insert("B", strRec("v")))
	wantContents(t, rt, "O", `("v")`)
	// Removing one derivation keeps the tuple.
	d := apply(t, rt, Delete("A", strRec("v")))
	if len(d) != 0 {
		t.Fatalf("delta after removing one of two derivations = %v", d)
	}
	wantContents(t, rt, "O", `("v")`)
	apply(t, rt, Delete("B", strRec("v")))
	wantContents(t, rt, "O")
}

func TestNegation(t *testing.T) {
	rt := newRT(t, `
		input relation A(x: string)
		input relation Block(x: string)
		output relation O(x: string)
		O(x) :- A(x), not Block(x).
	`)
	apply(t, rt, Insert("A", strRec("v")))
	wantContents(t, rt, "O", `("v")`)
	// Blocking retracts.
	d := apply(t, rt, Insert("Block", strRec("v")))
	if d["O"].Weight(strRec("v")) != -1 {
		t.Fatalf("block delta = %v", d)
	}
	wantContents(t, rt, "O")
	// Unblocking restores.
	apply(t, rt, Delete("Block", strRec("v")))
	wantContents(t, rt, "O", `("v")`)
}

func TestNegationWildcardAndPartialKey(t *testing.T) {
	rt := newRT(t, `
		input relation A(x: string)
		input relation Pair(x: string, y: string)
		output relation O(x: string)
		O(x) :- A(x), not Pair(x, _).
	`)
	apply(t, rt, Insert("A", strRec("v")))
	wantContents(t, rt, "O", `("v")`)
	apply(t, rt, Insert("Pair", strRec("v", "1")))
	wantContents(t, rt, "O")
	apply(t, rt, Insert("Pair", strRec("v", "2")))
	wantContents(t, rt, "O")
	apply(t, rt, Delete("Pair", strRec("v", "1")))
	wantContents(t, rt, "O") // still blocked by ("v","2")
	apply(t, rt, Delete("Pair", strRec("v", "2")))
	wantContents(t, rt, "O", `("v")`)
}

const reachSrc = `
input relation GivenLabel(n: string, label: string)
input relation Edge(a: string, b: string)
output relation Label(n: string, label: string)
Label(n, l) :- GivenLabel(n, l).
Label(n2, l) :- Label(n1, l), Edge(n1, n2).
`

func TestRecursionReachability(t *testing.T) {
	rt := newRT(t, reachSrc)
	apply(t, rt,
		Insert("GivenLabel", strRec("a", "L")),
		Insert("Edge", strRec("a", "b")),
		Insert("Edge", strRec("b", "c")),
	)
	wantContents(t, rt, "Label", `("a", "L")`, `("b", "L")`, `("c", "L")`)
	// New edge extends labels incrementally.
	apply(t, rt, Insert("Edge", strRec("c", "d")))
	wantContents(t, rt, "Label", `("a", "L")`, `("b", "L")`, `("c", "L")`, `("d", "L")`)
	// Deleting a middle edge retracts downstream labels (DRed).
	apply(t, rt, Delete("Edge", strRec("a", "b")))
	wantContents(t, rt, "Label", `("a", "L")`)
}

func TestRecursionCycleDeletion(t *testing.T) {
	// The classic counting-breaker: a cycle with an entry edge. DRed must
	// retract the whole cycle's labels when the entry disappears.
	rt := newRT(t, reachSrc)
	apply(t, rt,
		Insert("GivenLabel", strRec("root", "L")),
		Insert("Edge", strRec("root", "x")),
		Insert("Edge", strRec("x", "y")),
		Insert("Edge", strRec("y", "x")), // cycle x <-> y
	)
	wantContents(t, rt, "Label", `("root", "L")`, `("x", "L")`, `("y", "L")`)
	apply(t, rt, Delete("Edge", strRec("root", "x")))
	wantContents(t, rt, "Label", `("root", "L")`)
}

func TestRecursionRederive(t *testing.T) {
	// Two paths to the same node: deleting one keeps the label (rederive).
	rt := newRT(t, reachSrc)
	apply(t, rt,
		Insert("GivenLabel", strRec("a", "L")),
		Insert("Edge", strRec("a", "b")),
		Insert("Edge", strRec("a", "c")),
		Insert("Edge", strRec("b", "d")),
		Insert("Edge", strRec("c", "d")),
	)
	wantContents(t, rt, "Label",
		`("a", "L")`, `("b", "L")`, `("c", "L")`, `("d", "L")`)
	apply(t, rt, Delete("Edge", strRec("b", "d")))
	wantContents(t, rt, "Label",
		`("a", "L")`, `("b", "L")`, `("c", "L")`, `("d", "L")`)
	apply(t, rt, Delete("Edge", strRec("c", "d")))
	wantContents(t, rt, "Label", `("a", "L")`, `("b", "L")`, `("c", "L")`)
}

func TestMutualRecursion(t *testing.T) {
	rt := newRT(t, `
		input relation E(a: string, b: string)
		output relation Even(a: string, b: string)
		output relation Odd(a: string, b: string)
		Odd(a, b) :- E(a, b).
		Odd(a, c) :- Even(a, b), E(b, c).
		Even(a, c) :- Odd(a, b), E(b, c).
	`)
	apply(t, rt,
		Insert("E", strRec("1", "2")),
		Insert("E", strRec("2", "3")),
		Insert("E", strRec("3", "4")),
	)
	wantContents(t, rt, "Even", `("1", "3")`, `("2", "4")`)
	wantContents(t, rt, "Odd", `("1", "2")`, `("1", "4")`, `("2", "3")`, `("3", "4")`)
	apply(t, rt, Delete("E", strRec("2", "3")))
	wantContents(t, rt, "Even")
	wantContents(t, rt, "Odd", `("1", "2")`, `("3", "4")`)
}

func TestAggregation(t *testing.T) {
	rt := newRT(t, `
		input relation Sale(region: string, item: string, amount: int)
		output relation Total(region: string, total: int)
		output relation Count(region: string, n: int)
		Total(r, s) :- Sale(r, i, a), var s = sum(a) group_by (r).
		Count(r, c) :- Sale(r, i, a), var c = count() group_by (r).
	`)
	sale := func(r, i string, a int64) value.Record {
		return value.Record{value.String(r), value.String(i), value.Int(a)}
	}
	apply(t, rt, Insert("Sale", sale("w", "x", 10)), Insert("Sale", sale("w", "y", 5)))
	wantContents(t, rt, "Total", `("w", 15)`)
	wantContents(t, rt, "Count", `("w", 2)`)
	d := apply(t, rt, Insert("Sale", sale("w", "z", 1)))
	// The old total is retracted and the new one inserted.
	if d["Total"].Weight(value.Record{value.String("w"), value.Int(15)}) != -1 ||
		d["Total"].Weight(value.Record{value.String("w"), value.Int(16)}) != 1 {
		t.Fatalf("aggregate delta = %v", d["Total"].Entries())
	}
	apply(t, rt,
		Delete("Sale", sale("w", "x", 10)),
		Delete("Sale", sale("w", "y", 5)),
		Delete("Sale", sale("w", "z", 1)),
	)
	wantContents(t, rt, "Total") // empty group produces no row
	wantContents(t, rt, "Count")
}

func TestAggregationMinMax(t *testing.T) {
	rt := newRT(t, `
		input relation M(k: string, v: int)
		output relation Lo(k: string, v: int)
		output relation Hi(k: string, v: int)
		Lo(k, m) :- M(k, v), var m = min(v) group_by (k).
		Hi(k, m) :- M(k, v), var m = max(v) group_by (k).
	`)
	m := func(k string, v int64) value.Record { return value.Record{value.String(k), value.Int(v)} }
	apply(t, rt, Insert("M", m("a", 5)), Insert("M", m("a", 2)), Insert("M", m("a", 9)))
	wantContents(t, rt, "Lo", `("a", 2)`)
	wantContents(t, rt, "Hi", `("a", 9)`)
	apply(t, rt, Delete("M", m("a", 2)))
	wantContents(t, rt, "Lo", `("a", 5)`)
	apply(t, rt, Delete("M", m("a", 9)))
	wantContents(t, rt, "Hi", `("a", 5)`)
}

func TestFacts(t *testing.T) {
	rt := newRT(t, `
		input relation Block(x: string)
		output relation O(x: string)
		O("a").
		O("b") :- not Block("b").
	`)
	wantContents(t, rt, "O", `("a")`, `("b")`)
	// Blocking retracts the unit-rule-derived fact.
	apply(t, rt, Insert("Block", strRec("b")))
	wantContents(t, rt, "O", `("a")`)
	apply(t, rt, Delete("Block", strRec("b")))
	wantContents(t, rt, "O", `("a")`, `("b")`)
}

func TestConditionsAndAssignments(t *testing.T) {
	rt := newRT(t, `
		input relation N(k: string, v: int)
		output relation Big(k: string, dbl: int)
		Big(k, d) :- N(k, v), v > 10, var d = v * 2.
	`)
	n := func(k string, v int64) value.Record { return value.Record{value.String(k), value.Int(v)} }
	apply(t, rt, Insert("N", n("small", 3)), Insert("N", n("big", 20)))
	wantContents(t, rt, "Big", `("big", 40)`)
}

func TestIntermediateRelations(t *testing.T) {
	rt := newRT(t, `
		input relation In(x: string)
		relation Mid(x: string)
		output relation Out(x: string)
		Mid(x) :- In(x).
		Out(x) :- Mid(x).
	`)
	d := apply(t, rt, Insert("In", strRec("v")))
	if _, ok := d["Mid"]; ok {
		t.Fatalf("internal relation leaked into output delta")
	}
	wantContents(t, rt, "Out", `("v")`)
}

func TestErrorUnknownAndNonInput(t *testing.T) {
	rt := newRT(t, projSrc)
	if _, err := rt.Apply([]Update{Insert("Nope", strRec("x"))}); err == nil {
		t.Errorf("unknown relation accepted")
	}
	if _, err := rt.Apply([]Update{Insert("Out", strRec("x", "y"))}); err == nil {
		t.Errorf("insert into output relation accepted")
	}
	if _, err := rt.Apply([]Update{Insert("In", strRec("x"))}); err == nil {
		t.Errorf("wrong arity accepted")
	}
	if _, err := rt.Apply([]Update{Insert("In", value.Record{value.Int(1), value.Int(2)})}); err == nil {
		t.Errorf("ill-typed record accepted")
	}
	// Failed validation must not poison or change anything.
	apply(t, rt, Insert("In", strRec("x", "y")))
	wantContents(t, rt, "Out", `("y", "x")`)
}

func TestRuntimeErrorPoisons(t *testing.T) {
	rt := newRT(t, `
		input relation N(v: int)
		output relation O(v: int)
		O(10 / v) :- N(v).
	`)
	if _, err := rt.Apply([]Update{Insert("N", value.Record{value.Int(0)})}); err == nil {
		t.Fatalf("division by zero not reported")
	}
	if _, err := rt.Apply([]Update{Insert("N", value.Record{value.Int(5)})}); err == nil {
		t.Fatalf("poisoned runtime accepted a transaction")
	}
	if rt.Err() == nil {
		t.Fatalf("Err() = nil on poisoned runtime")
	}
}

func TestUnstratifiable(t *testing.T) {
	prog := compile(t, `
		input relation A(x: string)
		relation P(x: string)
		relation Q(x: string)
		P(x) :- A(x), not Q(x).
		Q(x) :- P(x).
	`)
	if _, err := New(prog, Options{}); err == nil ||
		!strings.Contains(err.Error(), "stratifiable") {
		t.Fatalf("unstratifiable program accepted: %v", err)
	}
}

func TestRecursiveComputedHeadRejected(t *testing.T) {
	prog := compile(t, `
		input relation Seed(v: int)
		relation Chain(v: int)
		Chain(v) :- Seed(v).
		Chain(v + 1) :- Chain(v), v < 10.
	`)
	if _, err := New(prog, Options{}); err == nil ||
		!strings.Contains(err.Error(), "pattern head") {
		t.Fatalf("computed recursive head accepted: %v", err)
	}
}

func TestMaxDerivationsGuard(t *testing.T) {
	rt, err := New(compile(t, reachSrc), Options{MaxDerivationsPerTxn: 5})
	if err != nil {
		t.Fatal(err)
	}
	var ups []Update
	ups = append(ups, Insert("GivenLabel", strRec("n0", "L")))
	for i := 0; i < 20; i++ {
		ups = append(ups, Insert("Edge", strRec(
			fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))))
	}
	if _, err := rt.Apply(ups); err == nil || !strings.Contains(err.Error(), "derivations") {
		t.Fatalf("derivation guard did not trip: %v", err)
	}
}

func TestStats(t *testing.T) {
	rt := newRT(t, reachSrc)
	apply(t, rt,
		Insert("GivenLabel", strRec("a", "L")),
		Insert("Edge", strRec("a", "b")),
	)
	st := rt.Stats()
	if st.Tuples == 0 || st.Indexes == 0 {
		t.Errorf("Stats = %+v, want nonzero", st)
	}
}

// --- Incremental == full recompute, the engine's central invariant ---

type txnStep struct {
	ups []Update
}

// runEquivalence drives random transactions against rt and checks after
// every transaction that each relation equals the naive recomputation over
// the accumulated inputs.
func runEquivalence(t *testing.T, src string, gen func(r *rand.Rand, insert bool) Update, txns, opsPerTxn int, seed int64) {
	t.Helper()
	prog := compile(t, src)
	rt, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	live := make(map[string]map[string]value.Record) // accumulated inputs
	for _, rel := range prog.Relations {
		if rel.Role == ast.RoleInput {
			live[rel.Name] = make(map[string]value.Record)
		}
	}
	for txn := 0; txn < txns; txn++ {
		var ups []Update
		for i := 0; i < 1+r.Intn(opsPerTxn); i++ {
			u := gen(r, r.Intn(3) > 0)
			ups = append(ups, u)
			if u.Insert {
				live[u.Relation][u.Rec.Key()] = u.Rec
			} else {
				delete(live[u.Relation], u.Rec.Key())
			}
		}
		if _, err := rt.Apply(ups); err != nil {
			t.Fatalf("txn %d: %v", txn, err)
		}
		inputs := make(map[string][]value.Record)
		for name, m := range live {
			for _, rec := range m {
				inputs[name] = append(inputs[name], rec)
			}
		}
		want, err := NaiveEval(prog, inputs)
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		for _, rel := range prog.Relations {
			got, _ := rt.Contents(rel.Name)
			if len(got) != len(want[rel.Name]) {
				t.Fatalf("txn %d: %s has %d records, naive %d\nincremental: %v\nnaive: %v",
					txn, rel.Name, len(got), len(want[rel.Name]), got, want[rel.Name])
			}
			for i := range got {
				if !got[i].Equal(want[rel.Name][i]) {
					t.Fatalf("txn %d: %s[%d] = %v, naive %v", txn, rel.Name, i, got[i], want[rel.Name][i])
				}
			}
		}
	}
}

func TestPropEquivalenceReachability(t *testing.T) {
	gen := func(r *rand.Rand, insert bool) Update {
		if r.Intn(5) == 0 {
			return Update{
				Relation: "GivenLabel",
				Rec:      strRec(fmt.Sprintf("n%d", r.Intn(6)), fmt.Sprintf("L%d", r.Intn(2))),
				Insert:   insert,
			}
		}
		return Update{
			Relation: "Edge",
			Rec:      strRec(fmt.Sprintf("n%d", r.Intn(6)), fmt.Sprintf("n%d", r.Intn(6))),
			Insert:   insert,
		}
	}
	runEquivalence(t, reachSrc, gen, 60, 4, 1)
	runEquivalence(t, reachSrc, gen, 60, 4, 2)
}

func TestPropEquivalenceNegationJoin(t *testing.T) {
	src := `
	input relation A(x: string, y: string)
	input relation B(y: string)
	output relation O(x: string)
	output relation P(x: string, y: string)
	O(x) :- A(x, y), not B(y).
	P(x, z) :- A(x, y), A(y, z), not B(x).
	`
	gen := func(r *rand.Rand, insert bool) Update {
		if r.Intn(3) == 0 {
			return Update{Relation: "B", Rec: strRec(fmt.Sprintf("n%d", r.Intn(5))), Insert: insert}
		}
		return Update{
			Relation: "A",
			Rec:      strRec(fmt.Sprintf("n%d", r.Intn(5)), fmt.Sprintf("n%d", r.Intn(5))),
			Insert:   insert,
		}
	}
	runEquivalence(t, src, gen, 80, 4, 3)
	runEquivalence(t, src, gen, 80, 4, 4)
}

func TestPropEquivalenceAggregation(t *testing.T) {
	src := `
	input relation S(k: string, item: string, v: int)
	output relation T(k: string, total: int)
	output relation C(k: string, n: int)
	T(k, s) :- S(k, i, v), var s = sum(v) group_by (k).
	C(k, c) :- S(k, i, v), var c = count() group_by (k).
	`
	gen := func(r *rand.Rand, insert bool) Update {
		return Update{
			Relation: "S",
			Rec: value.Record{
				value.String(fmt.Sprintf("k%d", r.Intn(3))),
				value.String(fmt.Sprintf("i%d", r.Intn(4))),
				value.Int(int64(r.Intn(10))),
			},
			Insert: insert,
		}
	}
	runEquivalence(t, src, gen, 80, 4, 5)
}

func TestPropEquivalenceMutualRecursion(t *testing.T) {
	src := `
	input relation E(a: string, b: string)
	output relation Even(a: string, b: string)
	output relation Odd(a: string, b: string)
	Odd(a, b) :- E(a, b).
	Odd(a, c) :- Even(a, b), E(b, c).
	Even(a, c) :- Odd(a, b), E(b, c).
	`
	gen := func(r *rand.Rand, insert bool) Update {
		return Update{
			Relation: "E",
			Rec:      strRec(fmt.Sprintf("n%d", r.Intn(5)), fmt.Sprintf("n%d", r.Intn(5))),
			Insert:   insert,
		}
	}
	runEquivalence(t, src, gen, 60, 3, 6)
	runEquivalence(t, src, gen, 60, 3, 7)
}

func TestPropEquivalenceSnvsStyle(t *testing.T) {
	// A program shaped like the snvs controller: typedefs, field access,
	// negation, joins.
	src := `
	typedef Cfg = Cfg{vid: bit<12>, tagged: bool}
	input relation Port(id: string, num: bit<9>, vid: bit<12>, tagged: bool)
	input relation Learned(port: bit<9>, vlan: bit<12>, mac: bit<48>)
	output relation InVlan(port: bit<9>, vlan: bit<12>)
	output relation Fwd(vlan: bit<12>, mac: bit<48>, port: bit<9>)
	InVlan(p, v) :- Port(_, p, v, false).
	Fwd(v, m, p) :- Learned(p, v, m), InVlan(p, v).
	`
	gen := func(r *rand.Rand, insert bool) Update {
		if r.Intn(2) == 0 {
			return Update{
				Relation: "Port",
				Rec: value.Record{
					value.String(fmt.Sprintf("p%d", r.Intn(4))),
					value.Bit(uint64(r.Intn(4))),
					value.Bit(uint64(r.Intn(3))),
					value.Bool(r.Intn(2) == 0),
				},
				Insert: insert,
			}
		}
		return Update{
			Relation: "Learned",
			Rec: value.Record{
				value.Bit(uint64(r.Intn(4))),
				value.Bit(uint64(r.Intn(3))),
				value.Bit(uint64(r.Intn(5))),
			},
			Insert: insert,
		}
	}
	runEquivalence(t, src, gen, 80, 4, 8)
}
