package engine

import (
	"fmt"
	"hash/maphash"
	"sort"
	"strings"

	"repro/internal/dl/ast"
	"repro/internal/dl/typecheck"
	"repro/internal/dl/value"
	"repro/internal/dl/zset"
)

// index is an arrangement: the present tuples of a relation, grouped by the
// values of a fixed set of key columns. Indexes are the memory cost of
// incremental evaluation (cf. the paper's §2.2 discussion of indexing
// overhead); the ablation benchmarks quantify it.
type index struct {
	keyCols []int
	// buckets maps encoded key → (record key → entry).
	buckets map[string]map[string]bucketEnt
	// deletedTxn holds the records removed during the current transaction,
	// by key then record key, so "old view" lookups can see them until the
	// transaction ends.
	deletedTxn map[string]map[string]bucketEnt
}

// bucketEnt is one arranged record. phash caches the maphash of the
// record's canonical key (zero with provenance off): provenance capture
// reads the identity hash of every joined fact straight off the bucket
// instead of rehashing the key string per emit.
type bucketEnt struct {
	rec   value.Record
	phash uint64
}

func newIndex(keyCols []int) *index {
	return &index{
		keyCols:    keyCols,
		buckets:    make(map[string]map[string]bucketEnt),
		deletedTxn: make(map[string]map[string]bucketEnt),
	}
}

func indexSignature(keyCols []int) string {
	var sb strings.Builder
	for i, c := range keyCols {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", c)
	}
	return sb.String()
}

// keyAppend appends the encoded index key of a record to dst. Callers pass
// pooled or stack buffers so arrangement maintenance and probes avoid
// allocating; the byte form is converted to a string only when it must be
// stored as a map key.
func (ix *index) keyAppend(dst []byte, rec value.Record) []byte {
	for _, c := range ix.keyCols {
		dst = rec[c].Encode(dst)
	}
	return dst
}

func (ix *index) insert(rec value.Record, recKey string, phash uint64) {
	bp := value.GetEncodeBuf()
	enc := ix.keyAppend(*bp, rec)
	b := ix.buckets[string(enc)] // zero-alloc map access
	if b == nil {
		b = make(map[string]bucketEnt)
		ix.buckets[string(enc)] = b
	}
	*bp = enc
	value.PutEncodeBuf(bp)
	b[recKey] = bucketEnt{rec: rec, phash: phash}
}

func (ix *index) remove(rec value.Record, recKey string, phash uint64) {
	bp := value.GetEncodeBuf()
	enc := ix.keyAppend(*bp, rec)
	if b := ix.buckets[string(enc)]; b != nil {
		delete(b, recKey)
		if len(b) == 0 {
			delete(ix.buckets, string(enc))
		}
	}
	d := ix.deletedTxn[string(enc)]
	if d == nil {
		d = make(map[string]bucketEnt)
		ix.deletedTxn[string(enc)] = d
	}
	*bp = enc
	value.PutEncodeBuf(bp)
	d[recKey] = bucketEnt{rec: rec, phash: phash}
}

func (ix *index) clearTxn() {
	if len(ix.deletedTxn) > 0 {
		ix.deletedTxn = make(map[string]map[string]bucketEnt)
	}
}

// relState is the runtime state of one relation.
type relState struct {
	rel       *typecheck.Relation
	id        int
	hidden    bool // engine-generated (group-input relations)
	recursive bool
	stratum   int
	// counts maps record key → entry. For non-recursive relations the
	// weight is the derivation count; for inputs and recursive relations it
	// is always 1 when present.
	counts map[string]countEntry
	// indexes by signature; indexList for iteration.
	indexes   map[string]*index
	indexList []*index
	// txnDelta is the set-level (presence) delta accumulated during the
	// current transaction; cleared when the transaction completes.
	txnDelta *zset.ZSet
	// negKeys tracks records whose derivation count is transiently
	// negative. The multilinear evaluation order may apply a retraction
	// before the matching insertion within one stratum; the invariant is
	// only that counts are non-negative once the stratum settles.
	negKeys map[string]bool
	// prov, when non-nil, is the runtime's provenance store: a retracted
	// fact drops its recorded derivations.
	prov *provStore
	// keyBytes sums the canonical-key lengths of the present tuples. It
	// is maintained on presence transitions (one integer add) and feeds
	// the memory-accounting estimates (profile.go MemoryStats).
	keyBytes int64
}

type countEntry struct {
	rec   value.Record
	count int64
	// phash is the maphash of the record's canonical key, computed once
	// when the entry is created (zero with provenance off). It seeds the
	// arrangement bucket entries and the provenance drop digests, so fact
	// identity is hashed once per insertion instead of once per use.
	phash uint64
}

func newRelState(rel *typecheck.Relation, id int, hidden bool) *relState {
	return &relState{
		rel:      rel,
		id:       id,
		hidden:   hidden,
		counts:   make(map[string]countEntry),
		indexes:  make(map[string]*index),
		txnDelta: zset.New(),
		negKeys:  make(map[string]bool),
	}
}

// getIndex returns (registering on demand) the arrangement on keyCols.
func (rs *relState) getIndex(keyCols []int) *index {
	cols := append([]int(nil), keyCols...)
	sort.Ints(cols)
	sig := indexSignature(cols)
	if ix, ok := rs.indexes[sig]; ok {
		return ix
	}
	ix := newIndex(cols)
	// Populate from current contents (relevant when indexes are registered
	// against an already-loaded runtime; at startup relations are empty).
	for recKey, e := range rs.counts {
		if e.count > 0 {
			ix.insert(e.rec, recKey, e.phash)
		}
	}
	rs.indexes[sig] = ix
	rs.indexList = append(rs.indexList, ix)
	return ix
}

// present reports whether rec currently has positive count.
func (rs *relState) present(recKey string) bool { return rs.counts[recKey].count > 0 }

// applyCount adds w derivations of rec and returns the presence transition:
// +1 became present, -1 became absent, 0 unchanged. Counts may go
// transiently negative while a stratum is being processed (retractions can
// be applied before the matching insertions); checkSettled verifies
// non-negativity once the stratum settles.
// hh, when non-zero, is the caller's already-computed maphash of recKey
// (plan emits hash the head key for the provenance journal); zero means
// "compute it here if provenance needs it".
func (rs *relState) applyCount(rec value.Record, recKey string, w int64, hh uint64) (int, error) {
	e, ok := rs.counts[recKey]
	if !ok {
		e = countEntry{rec: rec}
		if rs.prov != nil {
			if hh == 0 {
				hh = maphash.String(provSeed, recKey)
			}
			e.phash = hh
		}
	}
	before := e.count > 0
	e.count += w
	if e.count == 0 {
		delete(rs.counts, recKey)
	} else {
		rs.counts[recKey] = e
	}
	if e.count < 0 {
		rs.negKeys[recKey] = true
	} else {
		delete(rs.negKeys, recKey)
	}
	after := e.count > 0
	switch {
	case !before && after:
		rs.noteInsert(rec, recKey, e.phash)
		return 1, nil
	case before && !after:
		rs.noteRemove(rec, recKey, e.phash)
		return -1, nil
	default:
		return 0, nil
	}
}

// checkSettled verifies that no derivation count is negative once the
// relation's stratum has settled.
func (rs *relState) checkSettled() error {
	if len(rs.negKeys) == 0 {
		return nil
	}
	for key := range rs.negKeys {
		return fmt.Errorf("engine: relation %s: derivation count for %s settled negative",
			rs.rel.Name, rs.counts[key].rec)
	}
	return nil
}

// setPresent forces rec present (recursive relations). Reports whether the
// state changed.
func (rs *relState) setPresent(rec value.Record, recKey string) bool {
	if rs.present(recKey) {
		return false
	}
	e := countEntry{rec: rec, count: 1}
	if rs.prov != nil {
		e.phash = maphash.String(provSeed, recKey)
	}
	rs.counts[recKey] = e
	rs.noteInsert(rec, recKey, e.phash)
	return true
}

// setAbsent forces rec absent (recursive relations). Reports whether the
// state changed.
func (rs *relState) setAbsent(rec value.Record, recKey string) bool {
	e, ok := rs.counts[recKey]
	if !ok || e.count <= 0 {
		return false
	}
	delete(rs.counts, recKey)
	rs.noteRemove(rec, recKey, e.phash)
	return true
}

func (rs *relState) noteInsert(rec value.Record, recKey string, phash uint64) {
	for _, ix := range rs.indexList {
		ix.insert(rec, recKey, phash)
	}
	rs.keyBytes += int64(len(recKey))
	rs.txnDelta.AddKeyed(rec, recKey, 1)
}

func (rs *relState) noteRemove(rec value.Record, recKey string, phash uint64) {
	for _, ix := range rs.indexList {
		ix.remove(rec, recKey, phash)
	}
	rs.keyBytes -= int64(len(recKey))
	rs.txnDelta.AddKeyed(rec, recKey, -1)
	// Only rule and aggregate heads record provenance; input facts are
	// never in the store, so skip the journal append for them. The drop is
	// journaled by digest — the entry's cached key hash folded with the
	// relation id — so the flush replay never hashes.
	if rs.prov != nil && !rs.isInput() {
		rs.prov.j.drop(provFold(phash, rs.id))
	}
}

func (rs *relState) clearTxn() {
	if !rs.txnDelta.IsEmpty() {
		rs.txnDelta = zset.New()
	}
	for _, ix := range rs.indexList {
		ix.clearTxn()
	}
}

// viewMode selects which version of the database a plan step reads.
type viewMode int

const (
	// viewConvention: literals before the seed read the old view, literals
	// after it the new view (the multilinear differentiation convention).
	viewConvention viewMode = iota
	// viewAllOld: every lookup reads the pre-transaction state (DRed
	// overdelete phase).
	viewAllOld
	// viewAllNew: every lookup reads the current state (DRed insertion and
	// rederivation phases, initial evaluation).
	viewAllNew
)

// useOld decides, for a literal at bodyIdx relative to a seed at seedIdx,
// whether to read the old view.
func (m viewMode) useOld(bodyIdx, seedIdx int) bool {
	switch m {
	case viewAllOld:
		return true
	case viewAllNew:
		return false
	default:
		return bodyIdx < seedIdx
	}
}

// iterBucket visits every record of the chosen view with the given index
// key, yielding each record with its canonical record key (the bucket's
// map key — provenance capture hashes it instead of re-encoding the
// record). The callback returns false to stop early; iterBucket reports
// whether iteration ran to completion. The key is taken as bytes
// (zero-alloc map access); both map lookups happen before the first
// yield, so callers may reuse the key buffer inside the callback.
func (rs *relState) iterBucket(ix *index, key []byte, old bool, f func(rec value.Record, recKey string, phash uint64) bool) bool {
	b := ix.buckets[string(key)]
	var dt map[string]bucketEnt
	if old {
		dt = ix.deletedTxn[string(key)]
	}
	if b != nil {
		for recKey, e := range b {
			if old && rs.txnDelta.WeightKey(recKey) > 0 {
				continue // net-inserted this transaction: not in the old view
			}
			if !f(e.rec, recKey, e.phash) {
				return false
			}
		}
	}
	for recKey, e := range dt {
		// Only net deletions were in the old view; a record deleted and
		// re-inserted in this transaction is yielded from the bucket.
		if rs.txnDelta.WeightKey(recKey) < 0 {
			if !f(e.rec, recKey, e.phash) {
				return false
			}
		}
	}
	return true
}

// bucketNonEmpty reports whether the chosen view has any record with the
// given index key.
func (rs *relState) bucketNonEmpty(ix *index, key []byte, old bool) bool {
	found := false
	rs.iterBucket(ix, key, old, func(value.Record, string, uint64) bool {
		found = true
		return false
	})
	return found
}

// contents returns a sorted snapshot of the present records.
func (rs *relState) contents() []value.Record {
	out := make([]value.Record, 0, len(rs.counts))
	for _, e := range rs.counts {
		if e.count > 0 {
			out = append(out, e.rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// isInput reports whether the relation is externally fed.
func (rs *relState) isInput() bool { return rs.rel.Role == ast.RoleInput }
