package engine

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/dl/ast"
	"repro/internal/dl/typecheck"
	"repro/internal/dl/value"
	"repro/internal/dl/zset"
	"repro/internal/obs"
)

// Update is one element of a transaction: insert or delete a record in an
// input relation.
type Update struct {
	Relation string
	Rec      value.Record
	Insert   bool
}

// Insert builds an insertion update.
func Insert(rel string, rec value.Record) Update {
	return Update{Relation: rel, Rec: rec, Insert: true}
}

// Delete builds a deletion update.
func Delete(rel string, rec value.Record) Update { return Update{Relation: rel, Rec: rec} }

// Delta maps relation names to their set-level change for one transaction.
type Delta map[string]*zset.ZSet

// Options configure a Runtime.
type Options struct {
	// MaxDerivationsPerTxn bounds the number of tuple derivation operations
	// one transaction may perform; 0 means unlimited. It is a backstop
	// against divergent recursive programs (recursion through arithmetic).
	MaxDerivationsPerTxn int
	// RecursiveDeleteFallback bounds DRed's known worst case: when a
	// deletion's overdelete set grows beyond this fraction of a recursive
	// stratum's contents (dense cyclic data), the engine abandons
	// delete–rederive and recomputes the stratum from scratch instead,
	// capping the cost at one recomputation. 0 disables the fallback;
	// 0 < f <= 1 enables it.
	RecursiveDeleteFallback float64
	// Workers sets the number of goroutines used for plan evaluation within
	// a transaction. 0 and 1 select the fully sequential path. Values above
	// 1 fan independent rule seedings (and, for recursive strata, each
	// breadth-first propagation round) out across that many workers;
	// evaluation is read-only and results are merged sequentially, so the
	// output is identical to sequential evaluation.
	Workers int
	// CollectStats enables per-transaction evaluation statistics
	// (per-stratum timings, worker utilization, delta sizes), retrievable
	// via LastApplyStats. Off by default: the hot path then contains no
	// timing calls at all.
	CollectStats bool
	// CollectRuleStats extends CollectStats to per-rule granularity:
	// every plan seeding is timed and attributed to its rule, and
	// ApplyStats.Rules reports per-rule eval time, seedings, derivations,
	// and delta tuples. Off by default: the hot path then carries only a
	// length check per seeding (no clock reads, no allocation).
	CollectRuleStats bool
	// CollectProvenance records, per derived fact, the rule and input
	// facts of each derivation into a bounded store queryable via
	// Explain. Off by default: like CollectStats, the evaluation hot
	// path then stays allocation-free.
	CollectProvenance bool
	// ProvenanceCapacity bounds the number of facts the provenance store
	// retains (FIFO eviction); 0 selects DefaultProvenanceCapacity.
	ProvenanceCapacity int
	// Events, when set, receives flight-recorder events (apply.start,
	// apply.end, per-stratum stratum.eval at debug level). Stratum events
	// reuse the CollectStats timings, so they add no clock reads of their
	// own; with a nil recorder the hot path emits nothing.
	Events *obs.Recorder
}

// Runtime incrementally evaluates one checked program instance.
type Runtime struct {
	prog       *typecheck.Program
	opts       Options
	rels       []*relState
	relByName  map[string]*relState
	relOfDecl  map[*typecheck.Relation]*relState
	rules      []*compiledRule
	aggs       []*aggSpec
	aggsByHead map[*relState][]*aggSpec
	// occsByRel[id] lists the (rule, bodyIdx) pairs where relation id
	// occurs in a body.
	occsByRel   [][]occurrence
	rulesByHead map[*relState][]*compiledRule
	strata      [][]int
	recStratum  []bool
	failed      error
	// derivations counts tuple derivation operations in the current
	// transaction. Sequential sections increment it directly; parallel
	// evaluation batches use atomic increments (the two never overlap: a
	// batch is bracketed by a WaitGroup barrier).
	derivations int64
	// seqCtx is the evaluation scratch used by all sequential plan runs.
	seqCtx evalCtx
	// jobsBuf is the reusable seed-job buffer for counting strata; a
	// fresh slice per stratum per transaction was a steady allocation
	// source (and GC-assist magnet) on the apply path.
	jobsBuf []seedJob
	// stats is the in-progress ApplyStats of the current transaction (nil
	// unless Options.CollectStats); lastStats is the completed record of
	// the previous transaction. statJobs/statRounds accumulate the
	// current stratum's counters.
	stats      *ApplyStats
	lastStats  *ApplyStats
	statJobs   int
	statRounds int
	// ruleProf is the per-rule transaction accumulator (nil unless
	// Options.CollectRuleStats); seqCtx.prof aliases it so sequential
	// evaluation accumulates in place. roundEpoch/roundSeq dedupe
	// per-round rule participation marks (profRound).
	ruleProf   []ruleAcc
	roundEpoch []uint32
	roundSeq   uint32
	// prov is the provenance store (nil unless Options.CollectProvenance).
	prov *provStore
	// eventTxn tags the next Apply's flight-recorder events with a
	// transaction ID (set via SetEventTxn by the single-goroutine caller).
	eventTxn uint64
}

// SetEventTxn tags the next Apply's flight-recorder events with the
// given transaction ID (0 = untagged). The controller's apply loop is
// single-goroutine, so no synchronization is needed.
func (rt *Runtime) SetEventTxn(txn uint64) { rt.eventTxn = txn }

type occurrence struct {
	rule    *compiledRule
	bodyIdx int
}

// aggSpec is a compiled group_by rule: the hidden group relation feeds the
// head through per-group re-aggregation.
type aggSpec struct {
	groupRel  *relState
	keyIx     *index
	numKeys   int
	slotOfCol []int // group-relation column → rule slot
	argExpr   typecheck.Expr
	agg       string
	outSlot   int
	head      *relState
	headExprs []typecheck.Expr
	envSize   int
	// label identifies the aggregation in provenance records; labelHash
	// is its precomputed sig-hash seed (provLabelHash).
	label     string
	labelHash uint64
	// idx/id place the aggregation in the rule-profiling accumulator
	// space (profile.go; zero values unless CollectRuleStats).
	idx int
	id  string
}

// New compiles a checked program and returns a runtime with the program's
// facts already evaluated.
func New(prog *typecheck.Program, opts Options) (*Runtime, error) {
	rt := &Runtime{
		prog:        prog,
		opts:        opts,
		relByName:   make(map[string]*relState),
		relOfDecl:   make(map[*typecheck.Relation]*relState),
		rulesByHead: make(map[*relState][]*compiledRule),
		aggsByHead:  make(map[*relState][]*aggSpec),
	}
	for _, rel := range prog.Relations {
		rs := newRelState(rel, len(rt.rels), false)
		rt.rels = append(rt.rels, rs)
		rt.relByName[rel.Name] = rs
		rt.relOfDecl[rel] = rs
	}
	// Compile rules; group_by rules split into a hidden relation rule plus
	// an aggregation spec.
	var edges []depEdge
	for ri, rule := range prog.Rules {
		head := rt.relOfDecl[rule.Head]
		cr := &compiledRule{src: rule, head: head, slots: rule.Slots}
		if gb := rule.GroupBy; gb != nil {
			groupRel, spec := rt.makeGroupRel(ri, rule, gb)
			spec.head = head
			spec.headExprs = rule.HeadExprs
			spec.label = fmt.Sprintf("%s :- var = %s(..) group_by (..)", head.rel.Name, gb.Agg)
			spec.labelHash = provLabelHash(spec.label)
			rt.aggs = append(rt.aggs, spec)
			rt.aggsByHead[head] = append(rt.aggsByHead[head], spec)
			edges = append(edges, depEdge{from: groupRel.id, to: head.id, special: true})
			// The compiled rule now derives the hidden group relation.
			cr.head = groupRel
			cr.headExprs = groupHeadExprs(rule, spec)
			cr.body = rule.Body[:len(rule.Body)-1] // strip the GroupBy term
		} else {
			cr.headExprs = rule.HeadExprs
			cr.body = rule.Body
		}
		for _, term := range cr.body {
			if lit, ok := term.(*typecheck.LiteralTerm); ok {
				edges = append(edges, depEdge{
					from:    rt.relOfDecl[lit.Rel].id,
					to:      cr.head.id,
					special: lit.Negated,
				})
			}
		}
		cr.label = ruleLabel(cr)
		cr.labelHash = provLabelHash(cr.label)
		rt.rules = append(rt.rules, cr)
		rt.rulesByHead[cr.head] = append(rt.rulesByHead[cr.head], cr)
	}

	stratumOf, strata, recursive, err := stratify(len(rt.rels), edges)
	if err != nil {
		return nil, err
	}
	rt.strata, rt.recStratum = strata, recursive
	for id, rs := range rt.rels {
		rs.stratum = stratumOf[id]
		rs.recursive = recursive[stratumOf[id]]
	}
	for _, spec := range rt.aggs {
		if spec.head.recursive {
			return nil, fmt.Errorf("engine: aggregate into recursive relation %s is not supported",
				spec.head.rel.Name)
		}
	}
	rt.occsByRel = make([][]occurrence, len(rt.rels))
	for _, cr := range rt.rules {
		if err := rt.buildPlans(cr); err != nil {
			return nil, err
		}
		for idx, term := range cr.body {
			if lit, ok := term.(*typecheck.LiteralTerm); ok {
				rs := rt.relOfDecl[lit.Rel]
				rt.occsByRel[rs.id] = append(rt.occsByRel[rs.id], occurrence{rule: cr, bodyIdx: idx})
			}
		}
	}
	rt.initRuleProf()
	if opts.CollectProvenance {
		rt.prov = newProvStore(opts.ProvenanceCapacity)
		// Every relation (including hidden group relations) drops a
		// fact's provenance when the fact is retracted.
		for _, rs := range rt.rels {
			rs.prov = rt.prov
		}
		// Sequential evaluation journals straight into the store's own
		// journal, interleaved chronologically with drops.
		rt.seqCtx.journal = &rt.prov.j
	}
	// Evaluate facts and unit rules (the empty-input fixpoint).
	if _, err := rt.apply(nil, true); err != nil {
		return nil, err
	}
	return rt, nil
}

// makeGroupRel creates the hidden group-input relation for a group_by rule.
func (rt *Runtime) makeGroupRel(ri int, rule *typecheck.Rule, gb *typecheck.GroupByTerm) (*relState, *aggSpec) {
	// Columns: group keys first, then every other slot bound by the body
	// (excluding the aggregate output slot).
	isKey := make(map[int]bool, len(gb.KeySlots))
	for _, s := range gb.KeySlots {
		isKey[s] = true
	}
	var slotOfCol []int
	slotOfCol = append(slotOfCol, gb.KeySlots...)
	for s := range rule.Slots {
		if s != gb.OutSlot && !isKey[s] {
			slotOfCol = append(slotOfCol, s)
		}
	}
	cols := make([]typecheck.Column, len(slotOfCol))
	for i, s := range slotOfCol {
		cols[i] = typecheck.Column{
			Name: fmt.Sprintf("c%d_%s", i, rule.Slots[s].Name),
			Type: rule.Slots[s].Type,
		}
	}
	decl := &typecheck.Relation{
		Name: fmt.Sprintf("__group_%s_%d", rule.Head.Name, ri),
		Role: ast.RoleInternal,
		Cols: cols,
	}
	rs := newRelState(decl, len(rt.rels), true)
	rt.rels = append(rt.rels, rs)
	rt.relByName[decl.Name] = rs
	rt.relOfDecl[decl] = rs
	keyCols := make([]int, len(gb.KeySlots))
	for i := range keyCols {
		keyCols[i] = i
	}
	spec := &aggSpec{
		groupRel:  rs,
		keyIx:     rs.getIndex(keyCols),
		numKeys:   len(gb.KeySlots),
		slotOfCol: slotOfCol,
		argExpr:   gb.Arg,
		agg:       gb.Agg,
		outSlot:   gb.OutSlot,
		envSize:   len(rule.Slots),
	}
	return rs, spec
}

// groupHeadExprs builds the hidden relation's head: one VarRef per column.
func groupHeadExprs(rule *typecheck.Rule, spec *aggSpec) []typecheck.Expr {
	exprs := make([]typecheck.Expr, len(spec.slotOfCol))
	for i, s := range spec.slotOfCol {
		exprs[i] = &typecheck.VarRef{Slot: s, Name: rule.Slots[s].Name, T: rule.Slots[s].Type}
	}
	return exprs
}

func (rt *Runtime) relStateOf(rel *typecheck.Relation) *relState { return rt.relOfDecl[rel] }

// Err returns the error that poisoned the runtime, if any. A poisoned
// runtime rejects further transactions: a failure mid-propagation leaves
// derived state inconsistent.
func (rt *Runtime) Err() error { return rt.failed }

// Apply runs one transaction: the updates are applied to input relations
// and all derived relations are brought up to date incrementally. It
// returns the set-level deltas of the output relations.
func (rt *Runtime) Apply(updates []Update) (Delta, error) {
	return rt.apply(updates, false)
}

func (rt *Runtime) apply(updates []Update, initial bool) (Delta, error) {
	if rt.failed != nil {
		return nil, fmt.Errorf("engine: runtime is poisoned by a previous failure: %w", rt.failed)
	}
	// Stage and validate the updates before touching any state, so a bad
	// transaction is rejected atomically.
	type staged struct {
		rec     value.Record
		desired bool
	}
	stagedByRel := make(map[*relState]map[string]staged)
	for _, u := range updates {
		rs := rt.relByName[u.Relation]
		if rs == nil || rs.hidden {
			return nil, fmt.Errorf("engine: unknown relation %q", u.Relation)
		}
		if rs.rel.Role != ast.RoleInput {
			return nil, fmt.Errorf("engine: relation %q is not an input relation", u.Relation)
		}
		if err := rs.rel.CheckRecord(u.Rec); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		m := stagedByRel[rs]
		if m == nil {
			m = make(map[string]staged)
			stagedByRel[rs] = m
		}
		m[u.Rec.Key()] = staged{rec: u.Rec, desired: u.Insert}
	}
	rt.opts.Events.Append(obs.Ev("dl", "apply.start").WithTxn(rt.eventTxn).
		F("updates", int64(len(updates))))
	rt.derivations = 0
	rt.stats = nil
	if rt.opts.CollectStats {
		w := rt.opts.Workers
		if w < 1 {
			w = 1
		}
		rt.stats = &ApplyStats{Workers: rt.opts.Workers, WorkerBusy: make([]time.Duration, w)}
	}
	// Apply effective input changes.
	for rs, m := range stagedByRel {
		for recKey, s := range m {
			if s.desired {
				rs.setPresent(s.rec, recKey)
			} else {
				rs.setAbsent(s.rec, recKey)
			}
		}
	}
	// Propagate stratum by stratum.
	for s := range rt.strata {
		var t0 time.Time
		if rt.stats != nil {
			rt.statJobs, rt.statRounds = 0, 0
			t0 = time.Now()
		}
		var err error
		if rt.recStratum[s] {
			err = rt.runRecursiveStratum(s, initial)
		} else {
			err = rt.runCountingStratum(s, initial)
		}
		if err != nil {
			rt.failed = err
			return nil, err
		}
		if rt.stats != nil {
			rt.stats.Strata = append(rt.stats.Strata, StratumStats{
				Stratum:   s,
				Recursive: rt.recStratum[s],
				Jobs:      rt.statJobs,
				Rounds:    rt.statRounds,
				Duration:  time.Since(t0),
			})
		}
	}
	// Replay the transaction's provenance journal into the store under a
	// single lock acquisition (provenance.go flush).
	if rt.prov != nil {
		rt.prov.flush()
	}
	// Collect output deltas and reset per-transaction state.
	out := make(Delta)
	for _, rs := range rt.rels {
		if rs.rel.Role == ast.RoleOutput && !rs.txnDelta.IsEmpty() {
			out[rs.rel.Name] = rs.txnDelta.Clone()
		}
	}
	for _, rs := range rt.rels {
		rs.clearTxn()
	}
	if rt.ruleProf != nil {
		// Render and reset the per-rule accumulator even when CollectStats
		// is off, so counters never leak across transactions.
		rules := rt.buildRuleStats()
		if rt.stats != nil {
			rt.stats.Rules = rules
		}
	}
	if rt.stats != nil {
		rt.stats.Derivations = rt.derivations
		for _, z := range out {
			rt.stats.DeltaSize += z.Len()
		}
		rt.lastStats, rt.stats = rt.stats, nil
	}
	if rec := rt.opts.Events; rec != nil {
		if st := rt.lastStats; st != nil && rt.opts.CollectStats {
			for _, ss := range st.Strata {
				recursive := int64(0)
				if ss.Recursive {
					recursive = 1
				}
				rec.Append(obs.Ev("dl", "stratum.eval").WithTxn(rt.eventTxn).Debug().
					F("stratum", int64(ss.Stratum)).
					F("recursive", recursive).
					F("rounds", int64(ss.Rounds)).
					F("eval_us", ss.Duration.Microseconds()))
			}
		}
		rec.Append(obs.Ev("dl", "apply.end").WithTxn(rt.eventTxn).
			F("derivations", rt.derivations).
			F("changed_rels", int64(len(out))))
	}
	return out, nil
}

var errStop = errors.New("engine: stop iteration")

// errFallbackRecompute aborts DRed in favour of recomputing the stratum.
var errFallbackRecompute = errors.New("engine: overdelete budget exceeded")

// emitFunc receives head contributions. key is rec's canonical encoding,
// computed once at emit so downstream map operations (counts, Z-sets) never
// re-encode the record. hh is the maphash of key when the emitting plan
// already computed it for the provenance journal (zero otherwise);
// applyCount caches it so fact identity is hashed at most once.
type emitFunc func(rec value.Record, key string, hh uint64, w int64) error

// countDerivation enforces the per-transaction derivation budget
// (sequential sections only; workers use countDerivationAtomic).
func (rt *Runtime) countDerivation() error {
	rt.derivations++
	if rt.opts.MaxDerivationsPerTxn > 0 && rt.derivations > int64(rt.opts.MaxDerivationsPerTxn) {
		return fmt.Errorf("engine: transaction exceeded %d derivations (divergent recursion?)",
			rt.opts.MaxDerivationsPerTxn)
	}
	return nil
}

// runPlan seeds a plan with a tuple (or negation key, or nothing) and
// streams head contributions to emit. ctx supplies the evaluation scratch;
// concurrent callers must use distinct contexts. With rule profiling on
// the seeding is timed and attributed to the plan's rule; otherwise this
// is a direct call into evalPlan.
func (rt *Runtime) runPlan(ctx *evalCtx, p *plan, seed value.Record, seedKey string, w int64, mode viewMode, emit emitFunc) error {
	if len(ctx.prof) == 0 {
		return rt.evalPlan(ctx, p, seed, seedKey, w, mode, emit)
	}
	// curRule lets emit closures attribute presence transitions that
	// happen during this seeding (recursive insertion/overdelete paths).
	ctx.curRule = p.rule.idx
	t0 := time.Now()
	err := rt.evalPlan(ctx, p, seed, seedKey, w, mode, emit)
	a := &ctx.prof[p.rule.idx]
	a.ns += int64(time.Since(t0))
	a.seedings++
	return err
}

// evalPlan is runPlan's profiling-free body.
func (rt *Runtime) evalPlan(ctx *evalCtx, p *plan, seed value.Record, seedKey string, w int64, mode viewMode, emit emitFunc) error {
	ctx.capture = false
	if rt.prov != nil && mode != viewAllOld {
		// Capture the derivation trail: the seed fact (when the seed is a
		// positive literal) plus every fact joined below. The overdelete
		// phase (viewAllOld) captures nothing — retracted facts drop
		// their provenance wholesale instead.
		ctx.capture = true
		ctx.trail = ctx.trail[:0]
		if p.seedIdx >= 0 {
			if lit, ok := p.rule.body[p.seedIdx].(*typecheck.LiteralTerm); ok && !lit.Negated {
				rs := rt.relStateOf(lit.Rel)
				ti := provInput{rs: rs, rec: seed, key: seedKey}
				// The same seed fact seeds one plan per body occurrence;
				// the context memoizes its identity hash across those runs
				// (string equality is a pointer check for the same zset
				// key instance, and the hash is content-determined, so a
				// hit is always correct).
				if seedKey != "" && seedKey == ctx.memoSeedKey && rs == ctx.memoSeedRel {
					ti.hash = ctx.memoSeedHash
				}
				ctx.trail = append(ctx.trail, ti)
			}
		}
	}
	env := ctx.envFor(p.envSize)
	for _, b := range p.seedBinds {
		env[b.Slot] = seed[b.Col]
	}
	for _, c := range p.seedChecks {
		v, err := c.Expr.Eval(env)
		if err != nil {
			return fmt.Errorf("engine: %s: %w", p.rule.head.rel.Name, err)
		}
		if !v.Equal(seed[c.Col]) {
			return nil
		}
	}
	err := rt.execSteps(ctx, p, 0, env, w, mode, emit)
	if ctx.capture && len(ctx.trail) > 0 && ctx.trail[0].key != "" && ctx.trail[0].hash != 0 {
		ctx.memoSeedKey, ctx.memoSeedRel, ctx.memoSeedHash = ctx.trail[0].key, ctx.trail[0].rs, ctx.trail[0].hash
	}
	return err
}

func (rt *Runtime) execSteps(ctx *evalCtx, p *plan, si int, env []value.Value, w int64, mode viewMode, emit emitFunc) error {
	if si == len(p.steps) {
		rec := make(value.Record, len(p.rule.headExprs))
		for i, e := range p.rule.headExprs {
			v, err := e.Eval(env)
			if err != nil {
				return fmt.Errorf("engine: %s: %w", p.rule.head.rel.Name, err)
			}
			rec[i] = v
		}
		key := rec.Key()
		var hh uint64
		if ctx.capture {
			hh = rt.recordProv(ctx, p.rule, rec, key, w, ctx.trail)
		}
		if len(ctx.prof) > 0 {
			ctx.prof[p.rule.idx].derivs++
		}
		return emit(rec, key, hh, w)
	}
	switch st := p.steps[si].(type) {
	case *stepFilter:
		v, err := st.expr.Eval(env)
		if err != nil {
			return fmt.Errorf("engine: %s: %w", p.rule.head.rel.Name, err)
		}
		if !v.Bool() {
			return nil
		}
		return rt.execSteps(ctx, p, si+1, env, w, mode, emit)
	case *stepAssign:
		v, err := st.expr.Eval(env)
		if err != nil {
			return fmt.Errorf("engine: %s: %w", p.rule.head.rel.Name, err)
		}
		env[st.slot] = v
		return rt.execSteps(ctx, p, si+1, env, w, mode, emit)
	case *stepAbsent:
		key, err := evalKey(ctx, st.keyExprs, env)
		if err != nil {
			return fmt.Errorf("engine: %s: %w", p.rule.head.rel.Name, err)
		}
		if st.rel.bucketNonEmpty(st.ix, key, mode.useOld(st.bodyIdx, p.seedIdx)) {
			return nil
		}
		return rt.execSteps(ctx, p, si+1, env, w, mode, emit)
	case *stepJoin:
		key, err := evalKey(ctx, st.keyExprs, env)
		if err != nil {
			return fmt.Errorf("engine: %s: %w", p.rule.head.rel.Name, err)
		}
		old := mode.useOld(st.bodyIdx, p.seedIdx)
		var iterErr error
		// iterBucket resolves its map lookups before yielding, so nested
		// evalKey calls below may safely reuse (clobber) ctx.keyBuf.
		st.rel.iterBucket(st.ix, key, old, func(rec value.Record, recKey string, phash uint64) bool {
			for _, b := range st.binds {
				env[b.Slot] = rec[b.Col]
			}
			for _, c := range st.checks {
				v, err := c.Expr.Eval(env)
				if err != nil {
					iterErr = err
					return false
				}
				if !v.Equal(rec[c.Col]) {
					return true
				}
			}
			if ctx.capture {
				ti := provInput{rs: st.rel, rec: rec, key: recKey}
				if phash != 0 {
					ti.hash = provFold(phash, st.rel.id)
				}
				ctx.trail = append(ctx.trail, ti)
			}
			err := rt.execSteps(ctx, p, si+1, env, w, mode, emit)
			if ctx.capture {
				ctx.trail = ctx.trail[:len(ctx.trail)-1]
			}
			if err != nil {
				iterErr = err
				return false
			}
			return true
		})
		if iterErr != nil && !errors.Is(iterErr, errStop) {
			return iterErr
		}
		return iterErr
	default:
		panic("engine: unknown plan step")
	}
}

// evalKey encodes a lookup key into the context's scratch buffer. The
// returned slice is valid until the next evalKey call on the same context.
func evalKey(ctx *evalCtx, keyExprs []typecheck.Expr, env []value.Value) ([]byte, error) {
	enc := ctx.keyBuf[:0]
	for _, e := range keyExprs {
		v, err := e.Eval(env)
		if err != nil {
			ctx.keyBuf = enc
			return nil, err
		}
		enc = v.Encode(enc)
	}
	ctx.keyBuf = enc
	return enc, nil
}

// runCheckPlan reports whether head tuple rec is derivable by the rule in
// the current (new-view) database.
func (rt *Runtime) runCheckPlan(ctx *evalCtx, cr *compiledRule, rec value.Record) (bool, error) {
	found := false
	err := rt.runPlan(ctx, cr.checkPlan, rec, "", 1, viewAllNew, func(value.Record, string, uint64, int64) error {
		found = true
		return errStop
	})
	if err != nil && !errors.Is(err, errStop) {
		return false, err
	}
	return found, nil
}

// negTransition computes, for a negated literal occurrence whose relation
// changed, the distinct constraint keys whose emptiness flipped.
type negTransition struct {
	keyRec value.Record
	// factor is the change of the [no match] indicator: +1 when matches
	// disappeared, -1 when matches appeared.
	factor int64
}

func (rt *Runtime) negTransitions(lit *typecheck.LiteralTerm) []negTransition {
	rs := rt.relStateOf(lit.Rel)
	ix := rs.getIndex(negKeyCols(lit))
	seen := make(map[string]bool)
	var out []negTransition
	bp := value.GetEncodeBuf()
	enc := *bp
	rs.txnDelta.Each(func(rec value.Record, _ int64) {
		keyRec := make(value.Record, len(lit.Checks))
		for i, chk := range lit.Checks {
			keyRec[i] = rec[chk.Col]
		}
		// Checks are in column order, so this encoding matches the index key.
		enc = keyRec.AppendEncode(enc[:0])
		if seen[string(enc)] {
			return
		}
		seen[string(enc)] = true
		oldNE := rs.bucketNonEmpty(ix, enc, true)
		newNE := rs.bucketNonEmpty(ix, enc, false)
		switch {
		case oldNE && !newNE:
			out = append(out, negTransition{keyRec: keyRec, factor: 1})
		case !oldNE && newNE:
			out = append(out, negTransition{keyRec: keyRec, factor: -1})
		}
	})
	*bp = enc
	value.PutEncodeBuf(bp)
	return out
}

// gatherCountingJobs collects every plan seeding a non-recursive stratum
// needs. The stratum's inputs are settled lower strata, so the whole job
// list can be computed before any evaluation runs.
func (rt *Runtime) gatherCountingJobs(head *relState, initial bool) []seedJob {
	jobs := rt.jobsBuf[:0]
	for _, cr := range rt.rulesByHead[head] {
		if initial && cr.unitPlan != nil {
			jobs = append(jobs, seedJob{p: cr.unitPlan, w: 1, mode: viewAllNew, head: head})
		}
		for idx, p := range cr.plansByBody {
			if p == nil {
				continue
			}
			lit := cr.body[idx].(*typecheck.LiteralTerm)
			litRel := rt.relStateOf(lit.Rel)
			if litRel.txnDelta.IsEmpty() {
				continue
			}
			if lit.Negated {
				for _, tr := range rt.negTransitions(lit) {
					jobs = append(jobs, seedJob{p: p, seed: tr.keyRec, w: tr.factor, mode: viewConvention, head: head})
				}
				continue
			}
			litRel.txnDelta.EachKeyed(func(key string, rec value.Record, w int64) {
				jobs = append(jobs, seedJob{p: p, seed: rec, key: key, w: w, mode: viewConvention, head: head})
			})
		}
	}
	rt.jobsBuf = jobs
	return jobs
}

// applyZSetOuts merges worker-private Z-sets into head through
// applyCount. ruleIdx >= 0 attributes net presence transitions to that
// rule in the profiling accumulator.
func (rt *Runtime) applyZSetOuts(head *relState, outs []*zset.ZSet, ruleIdx int) error {
	if rt.prov != nil && len(outs) > 1 {
		// With provenance on, consolidate the workers' Z-sets first so
		// each key sees at most one net applyCount transition. Without
		// this, a transient remove (worker A's -1 merged before worker
		// B's +1) would drop provenance recorded during evaluation for
		// a fact that ends the transaction present.
		for _, z := range outs[1:] {
			outs[0].AddAll(z)
		}
		outs = outs[:1]
	}
	for _, z := range outs {
		var applyErr error
		z.EachKeyed(func(key string, rec value.Record, w int64) {
			if applyErr != nil {
				return
			}
			var tr int
			tr, applyErr = head.applyCount(rec, key, w, 0)
			if tr != 0 && ruleIdx >= 0 {
				rt.ruleProf[ruleIdx].delta++
			}
		})
		if applyErr != nil {
			return applyErr
		}
	}
	return nil
}

// runCountingSeq evaluates counting-stratum jobs sequentially, applying
// each head contribution immediately.
func (rt *Runtime) runCountingSeq(head *relState, jobs []seedJob) error {
	emit := func(rec value.Record, key string, hh uint64, w int64) error {
		if err := rt.countDerivation(); err != nil {
			return err
		}
		tr, err := head.applyCount(rec, key, w, hh)
		if tr != 0 && len(rt.seqCtx.prof) > 0 {
			rt.seqCtx.prof[rt.seqCtx.curRule].delta++
		}
		return err
	}
	for _, j := range jobs {
		if err := rt.runPlan(&rt.seqCtx, j.p, j.seed, j.key, j.w, j.mode, emit); err != nil {
			return err
		}
	}
	return nil
}

// runCountingStratum propagates settled lower-stratum deltas into one
// non-recursive relation using derivation counting. Evaluation is read-only
// with respect to this stratum (the head never appears in its own rule
// bodies), so seedings are independent: with Workers > 1 they fan out
// across a pool, each worker accumulating head contributions in a private
// Z-set, and the Z-sets are merged through applyCount afterwards. Weight
// addition commutes, so the merged result is identical to sequential
// evaluation.
func (rt *Runtime) runCountingStratum(s int, initial bool) error {
	head := rt.rels[rt.strata[s][0]]
	jobs := rt.gatherCountingJobs(head, initial)
	if rt.stats != nil {
		rt.statJobs += len(jobs)
	}
	if nw := rt.parallelism(len(jobs)); nw > 1 && rt.ruleProf == nil {
		outs, err := rt.evalJobsZSet(jobs, nw)
		if err != nil {
			return err
		}
		if err := rt.applyZSetOuts(head, outs, -1); err != nil {
			return err
		}
	} else if nw > 1 {
		// Rule profiling: the job list is rule-contiguous (gathered per
		// rule), so evaluating one rule's segment at a time keeps net
		// presence transitions attributable. Segments still fan out
		// across workers, and the chronological segment order keeps the
		// provenance journal drop/record interleaving correct.
		for start := 0; start < len(jobs); {
			end := start + 1
			for end < len(jobs) && jobs[end].p.rule == jobs[start].p.rule {
				end++
			}
			seg := jobs[start:end]
			ruleIdx := seg[0].p.rule.idx
			if segNw := rt.parallelism(len(seg)); segNw > 1 {
				outs, err := rt.evalJobsZSet(seg, segNw)
				if err != nil {
					return err
				}
				if err := rt.applyZSetOuts(head, outs, ruleIdx); err != nil {
					return err
				}
			} else if err := rt.runCountingSeq(head, seg); err != nil {
				return err
			}
			start = end
		}
	} else {
		if err := rt.runCountingSeq(head, jobs); err != nil {
			return err
		}
	}
	for _, spec := range rt.aggsByHead[head] {
		if err := rt.runAggregate(spec); err != nil {
			return err
		}
	}
	// Drop the job buffer's record/key references so the reused backing
	// array doesn't pin the previous transaction's seeds.
	clear(jobs)
	return head.checkSettled()
}

// runAggregate re-aggregates the groups affected by the hidden group
// relation's delta and applies the head changes.
func (rt *Runtime) runAggregate(spec *aggSpec) error {
	if spec.groupRel.txnDelta.IsEmpty() {
		return nil
	}
	if rt.ruleProf != nil {
		t0 := time.Now()
		defer func() {
			rt.ruleProf[spec.idx].ns += int64(time.Since(t0))
		}()
	}
	env := make([]value.Value, spec.envSize)
	seen := make(map[string]bool)
	var keys []value.Record
	spec.groupRel.txnDelta.Each(func(rec value.Record, _ int64) {
		keyRec := rec[:spec.numKeys]
		keyEnc := value.Record(keyRec).Key()
		if !seen[keyEnc] {
			seen[keyEnc] = true
			keys = append(keys, keyRec)
		}
	})
	if rt.ruleProf != nil {
		// One re-aggregated group is one seeding of the aggregation.
		rt.ruleProf[spec.idx].seedings += int64(len(keys))
	}
	var keyBuf []byte
	for _, keyRec := range keys {
		keyBuf = value.Record(keyRec).AppendEncode(keyBuf[:0])
		oldV, oldOK, err := rt.aggCompute(spec, keyBuf, true, env)
		if err != nil {
			return err
		}
		newV, newOK, err := rt.aggCompute(spec, keyBuf, false, env)
		if err != nil {
			return err
		}
		if oldOK && newOK && oldV.Equal(newV) {
			continue
		}
		mkHead := func(agg value.Value) (value.Record, error) {
			for i := 0; i < spec.numKeys; i++ {
				env[spec.slotOfCol[i]] = keyRec[i]
			}
			env[spec.outSlot] = agg
			rec := make(value.Record, len(spec.headExprs))
			for i, e := range spec.headExprs {
				v, err := e.Eval(env)
				if err != nil {
					return nil, fmt.Errorf("engine: %s: %w", spec.head.rel.Name, err)
				}
				rec[i] = v
			}
			return rec, nil
		}
		if oldOK {
			rec, err := mkHead(oldV)
			if err != nil {
				return err
			}
			if err := rt.countDerivation(); err != nil {
				return err
			}
			key := rec.Key()
			if rt.prov != nil {
				rt.prov.j.unrecordByLabel(provDigest(spec.head.id, key), spec.label)
			}
			tr, err := spec.head.applyCount(rec, key, -1, 0)
			if err != nil {
				return err
			}
			if rt.ruleProf != nil {
				a := &rt.ruleProf[spec.idx]
				a.derivs++
				if tr != 0 {
					a.delta++
				}
			}
		}
		if newOK {
			rec, err := mkHead(newV)
			if err != nil {
				return err
			}
			if err := rt.countDerivation(); err != nil {
				return err
			}
			key := rec.Key()
			tr, err := spec.head.applyCount(rec, key, 1, 0)
			if err != nil {
				return err
			}
			if rt.ruleProf != nil {
				a := &rt.ruleProf[spec.idx]
				a.derivs++
				if tr != 0 {
					a.delta++
				}
			}
			if rt.prov != nil {
				rt.recordAggProv(spec, keyBuf, rec, key)
			}
		}
	}
	return nil
}

// aggCompute evaluates the aggregate over one group in the chosen view.
// ok is false when the group is empty (no output row).
func (rt *Runtime) aggCompute(spec *aggSpec, keyEnc []byte, old bool, env []value.Value) (value.Value, bool, error) {
	var acc value.Value
	var sum int64
	var bitSum uint64
	n := 0
	var evalErr error
	spec.groupRel.iterBucket(spec.keyIx, keyEnc, old, func(rec value.Record, _ string, _ uint64) bool {
		n++
		if spec.argExpr == nil {
			return true
		}
		for i, s := range spec.slotOfCol {
			env[s] = rec[i]
		}
		v, err := spec.argExpr.Eval(env)
		if err != nil {
			evalErr = err
			return false
		}
		switch spec.agg {
		case "sum":
			if v.Kind() == value.KindBit {
				bitSum += v.Bit()
			} else {
				sum += v.Int()
			}
		case "min":
			if !acc.IsValid() || v.Compare(acc) < 0 {
				acc = v
			}
		case "max":
			if !acc.IsValid() || v.Compare(acc) > 0 {
				acc = v
			}
		}
		return true
	})
	if evalErr != nil {
		return value.Value{}, false, evalErr
	}
	if n == 0 {
		return value.Value{}, false, nil
	}
	switch spec.agg {
	case "count":
		return value.Int(int64(n)), true, nil
	case "sum":
		if spec.argExpr.Type().Kind == value.TBit {
			return value.BitW(bitSum, spec.argExpr.Type().Width), true, nil
		}
		return value.Int(sum), true, nil
	default:
		return acc, true, nil
	}
}

// runRecursiveStratum runs DRed (overdelete, rederive) plus semi-naive
// insertion for one recursive stratum.
func (rt *Runtime) runRecursiveStratum(s int, initial bool) error {
	inStratum := make(map[*relState]bool)
	var stratumRules []*compiledRule
	for _, id := range rt.strata[s] {
		rs := rt.rels[id]
		inStratum[rs] = true
		stratumRules = append(stratumRules, rt.rulesByHead[rs]...)
	}
	// Skip quickly when nothing feeding the stratum changed.
	changed := initial
	for _, cr := range stratumRules {
		for idx := range cr.plansByBody {
			if cr.plansByBody[idx] == nil {
				continue
			}
			lit := cr.body[idx].(*typecheck.LiteralTerm)
			litRel := rt.relStateOf(lit.Rel)
			if !inStratum[litRel] && !litRel.txnDelta.IsEmpty() {
				changed = true
			}
		}
	}
	if !changed {
		return nil
	}
	if rt.opts.Workers > 1 {
		return rt.runRecursiveStratumParallel(inStratum, stratumRules, initial)
	}

	type pending struct {
		rel *relState
		rec value.Record
	}

	// ---- Phase 1: overdelete ----
	od := make(map[*relState]map[string]value.Record)
	var queue []pending
	// The DRed fallback: when overdeletion cascades beyond the configured
	// fraction of the stratum (dense cyclic data), recomputing the stratum
	// is cheaper than delete+rederive.
	odBudget := -1
	if f := rt.opts.RecursiveDeleteFallback; f > 0 && !initial {
		size := 0
		for rs := range inStratum {
			size += len(rs.counts)
		}
		odBudget = int(f * float64(size))
	}
	odTotal := 0
	addOD := func(rs *relState) emitFunc {
		return func(rec value.Record, key string, _ uint64, _ int64) error {
			if err := rt.countDerivation(); err != nil {
				return err
			}
			if !rs.present(key) {
				return nil
			}
			m := od[rs]
			if m == nil {
				m = make(map[string]value.Record)
				od[rs] = m
			}
			if _, dup := m[key]; dup {
				return nil
			}
			m[key] = rec
			odTotal++
			if len(rt.seqCtx.prof) > 0 {
				// Overdeletes count as the overdeleting rule's delta
				// tuples (rederivations add back as insertions).
				rt.seqCtx.prof[rt.seqCtx.curRule].delta++
			}
			if odBudget >= 0 && odTotal > odBudget {
				return errFallbackRecompute
			}
			queue = append(queue, pending{rel: rs, rec: rec})
			return nil
		}
	}
	if !initial {
		phase1 := func() error {
			for _, cr := range stratumRules {
				emit := addOD(cr.head)
				for idx, p := range cr.plansByBody {
					if p == nil {
						continue
					}
					lit := cr.body[idx].(*typecheck.LiteralTerm)
					litRel := rt.relStateOf(lit.Rel)
					if inStratum[litRel] || litRel.txnDelta.IsEmpty() {
						continue
					}
					if lit.Negated {
						for _, tr := range rt.negTransitions(lit) {
							if tr.factor < 0 { // matches appeared: support lost
								if err := rt.runPlan(&rt.seqCtx, p, tr.keyRec, "", 1, viewAllOld, emit); err != nil {
									return err
								}
							}
						}
						continue
					}
					var seedErr error
					litRel.txnDelta.Each(func(rec value.Record, w int64) {
						if seedErr != nil || w >= 0 {
							return
						}
						seedErr = rt.runPlan(&rt.seqCtx, p, rec, "", 1, viewAllOld, emit)
					})
					if seedErr != nil {
						return seedErr
					}
				}
			}
			for len(queue) > 0 {
				pd := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				for _, occ := range rt.occsByRel[pd.rel.id] {
					if !inStratum[occ.rule.head] {
						continue
					}
					lit := occ.rule.body[occ.bodyIdx].(*typecheck.LiteralTerm)
					if lit.Negated {
						continue // in-stratum negation is impossible (stratified)
					}
					if err := rt.runPlan(&rt.seqCtx, occ.rule.plansByBody[occ.bodyIdx], pd.rec, "", 1,
						viewAllOld, addOD(occ.rule.head)); err != nil {
						return err
					}
				}
			}
			return nil
		}
		if err := phase1(); err != nil {
			if errors.Is(err, errFallbackRecompute) {
				return rt.recomputeStratum(inStratum, stratumRules)
			}
			return err
		}
		// ---- Phase 2: apply overdeletions ----
		for rs, m := range od {
			for key, rec := range m {
				rs.setAbsent(rec, key)
			}
		}
	}

	// ---- Phase 3: rederive candidates, then semi-naive insertion ----
	queue = queue[:0]
	tryInsert := func(rs *relState) emitFunc {
		return func(rec value.Record, key string, _ uint64, _ int64) error {
			if err := rt.countDerivation(); err != nil {
				return err
			}
			if rs.setPresent(rec, key) {
				queue = append(queue, pending{rel: rs, rec: rec})
				if len(rt.seqCtx.prof) > 0 {
					rt.seqCtx.prof[rt.seqCtx.curRule].delta++
				}
			}
			return nil
		}
	}
	for rs, m := range od {
		insert := tryInsert(rs)
		for key, rec := range m {
			for _, cr := range rt.rulesByHead[rs] {
				if cr.checkPlan == nil {
					continue
				}
				ok, err := rt.runCheckPlan(&rt.seqCtx, cr, rec)
				if err != nil {
					return err
				}
				if ok {
					if err := insert(rec, key, 0, 1); err != nil {
						return err
					}
					break
				}
			}
		}
	}
	for _, cr := range stratumRules {
		insert := tryInsert(cr.head)
		if initial && cr.unitPlan != nil {
			if err := rt.runPlan(&rt.seqCtx, cr.unitPlan, nil, "", 1, viewAllNew, insert); err != nil {
				return err
			}
		}
		for idx, p := range cr.plansByBody {
			if p == nil {
				continue
			}
			lit := cr.body[idx].(*typecheck.LiteralTerm)
			litRel := rt.relStateOf(lit.Rel)
			if inStratum[litRel] || litRel.txnDelta.IsEmpty() {
				continue
			}
			if lit.Negated {
				for _, tr := range rt.negTransitions(lit) {
					if tr.factor > 0 { // matches disappeared: support gained
						if err := rt.runPlan(&rt.seqCtx, p, tr.keyRec, "", 1, viewAllNew, insert); err != nil {
							return err
						}
					}
				}
				continue
			}
			var seedErr error
			litRel.txnDelta.Each(func(rec value.Record, w int64) {
				if seedErr != nil || w <= 0 {
					return
				}
				seedErr = rt.runPlan(&rt.seqCtx, p, rec, "", 1, viewAllNew, insert)
			})
			if seedErr != nil {
				return seedErr
			}
		}
	}
	for len(queue) > 0 {
		pd := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, occ := range rt.occsByRel[pd.rel.id] {
			if !inStratum[occ.rule.head] {
				continue
			}
			lit := occ.rule.body[occ.bodyIdx].(*typecheck.LiteralTerm)
			if lit.Negated {
				continue
			}
			if err := rt.runPlan(&rt.seqCtx, occ.rule.plansByBody[occ.bodyIdx], pd.rec, "", 1,
				viewAllNew, tryInsert(occ.rule.head)); err != nil {
				return err
			}
		}
	}
	return nil
}

// recomputeStratum rebuilds a recursive stratum from scratch: every
// stratum tuple is retracted and the stratum's fixpoint is re-derived from
// the (already settled) context relations. txnDelta consolidation turns
// the clear+rebuild into the net output delta automatically. This is the
// RecursiveDeleteFallback path; its cost is one stratum recomputation
// regardless of how pathological the deletion's overdelete set would be.
func (rt *Runtime) recomputeStratum(inStratum map[*relState]bool, stratumRules []*compiledRule) error {
	type pending struct {
		rel *relState
		rec value.Record
	}
	for rs := range inStratum {
		recs := make([]countEntry, 0, len(rs.counts))
		for _, e := range rs.counts {
			recs = append(recs, e)
		}
		for _, e := range recs {
			rs.setAbsent(e.rec, e.rec.Key())
		}
	}
	var queue []pending
	tryInsert := func(rs *relState) emitFunc {
		return func(rec value.Record, key string, _ uint64, _ int64) error {
			if err := rt.countDerivation(); err != nil {
				return err
			}
			if rs.setPresent(rec, key) {
				queue = append(queue, pending{rel: rs, rec: rec})
				if len(rt.seqCtx.prof) > 0 {
					rt.seqCtx.prof[rt.seqCtx.curRule].delta++
				}
			}
			return nil
		}
	}
	// Seed: unit rules, plus one full scan of the first positive context
	// occurrence of each rule (a plan seeded at any occurrence joins the
	// whole remaining body, so one seeding per rule is complete).
	for _, cr := range stratumRules {
		insert := tryInsert(cr.head)
		if cr.unitPlan != nil {
			if err := rt.runPlan(&rt.seqCtx, cr.unitPlan, nil, "", 1, viewAllNew, insert); err != nil {
				return err
			}
		}
		for idx, p := range cr.plansByBody {
			if p == nil {
				continue
			}
			lit := cr.body[idx].(*typecheck.LiteralTerm)
			litRel := rt.relStateOf(lit.Rel)
			if lit.Negated || inStratum[litRel] {
				continue
			}
			var seedErr error
			for _, e := range litRel.counts {
				if e.count <= 0 {
					continue
				}
				if seedErr = rt.runPlan(&rt.seqCtx, p, e.rec, "", 1, viewAllNew, insert); seedErr != nil {
					return seedErr
				}
			}
			break // one complete seeding per rule suffices
		}
	}
	for len(queue) > 0 {
		pd := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, occ := range rt.occsByRel[pd.rel.id] {
			if !inStratum[occ.rule.head] {
				continue
			}
			lit := occ.rule.body[occ.bodyIdx].(*typecheck.LiteralTerm)
			if lit.Negated {
				continue
			}
			if err := rt.runPlan(&rt.seqCtx, occ.rule.plansByBody[occ.bodyIdx], pd.rec, "", 1,
				viewAllNew, tryInsert(occ.rule.head)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Contents returns a sorted snapshot of a relation's records.
func (rt *Runtime) Contents(name string) ([]value.Record, error) {
	rs := rt.relByName[name]
	if rs == nil || rs.hidden {
		return nil, fmt.Errorf("engine: unknown relation %q", name)
	}
	return rs.contents(), nil
}

// RelationRole reports a (non-hidden) relation's role; ok is false for
// unknown or hidden names.
func (rt *Runtime) RelationRole(name string) (ast.RelationRole, bool) {
	rs := rt.relByName[name]
	if rs == nil || rs.hidden {
		return 0, false
	}
	return rs.rel.Role, true
}

// Relations returns the names of the program's (non-hidden) relations,
// sorted.
func (rt *Runtime) Relations() []string {
	var names []string
	for _, rs := range rt.rels {
		if !rs.hidden {
			names = append(names, rs.rel.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Stats summarizes runtime memory shape for benchmarking.
type Stats struct {
	Tuples       int // present tuples across all relations (incl. hidden)
	IndexEntries int // tuple references held by arrangements
	Indexes      int
}

// Stats reports current memory-shape statistics.
func (rt *Runtime) Stats() Stats {
	var st Stats
	for _, rs := range rt.rels {
		st.Tuples += len(rs.counts)
		for _, ix := range rs.indexList {
			st.Indexes++
			for _, b := range ix.buckets {
				st.IndexEntries += len(b)
			}
		}
	}
	return st
}
