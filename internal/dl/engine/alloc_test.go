package engine

import (
	"testing"

	"repro/internal/dl/parser"
	"repro/internal/dl/typecheck"
	"repro/internal/dl/value"
)

// probeSetup builds a settled runtime for a two-way join whose matches are
// always rejected by a trailing filter, so seeding the join plan exercises
// the full arrangement probe path (key encode, bucket lookup, bucket
// iteration, binds, filter) without emitting — i.e. without constructing
// head records, which necessarily allocate.
func probeSetup(t testing.TB) (*Runtime, *plan, value.Record) {
	t.Helper()
	tree, err := parser.Parse(`
		input relation R(a: int, b: int)
		input relation S(b: int, c: int)
		output relation O(a: int, c: int)
		O(a, c) :- R(a, b), S(b, c), c > 1000000.
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := typecheck.Check(tree)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ups []Update
	for i := int64(0); i < 16; i++ {
		ups = append(ups, Insert("R", value.Record{value.Int(1), value.Int(i % 4)}))
		ups = append(ups, Insert("S", value.Record{value.Int(i % 4), value.Int(i)}))
	}
	if _, err := rt.Apply(ups); err != nil {
		t.Fatal(err)
	}
	head := rt.relByName["O"]
	cr := rt.rulesByHead[head][0]
	p := cr.plansByBody[0] // seeded at R: probes the arrangement on S
	if p == nil {
		t.Fatal("no plan seeded at body literal 0")
	}
	return rt, p, value.Record{value.Int(1), value.Int(2)}
}

var discardEmit emitFunc = func(value.Record, string, int64) error { return nil }

// TestArrangementProbeZeroAlloc pins the tentpole allocation win: once the
// evaluation context's scratch buffers are warm, probing an arrangement
// performs zero allocations — keys are encoded into a reused buffer and
// looked up via Go's zero-copy []byte map access.
func TestArrangementProbeZeroAlloc(t *testing.T) {
	rt, p, seed := probeSetup(t)
	ctx := &evalCtx{}
	run := func() {
		if err := rt.runPlan(ctx, p, seed, 1, viewAllNew, discardEmit); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch buffers
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("arrangement probe hit path allocates %.1f times per probe, want 0", allocs)
	}
}

// BenchmarkRecordKeyCached measures the arrangement probe hit path the
// cached-key refactor optimizes (the per-probe Record.Key() allocation it
// removed would show up as allocs/op here; the bench asserts the shape via
// ReportAllocs).
func BenchmarkRecordKeyCached(b *testing.B) {
	rt, p, seed := probeSetup(b)
	ctx := &evalCtx{}
	if err := rt.runPlan(ctx, p, seed, 1, viewAllNew, discardEmit); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.runPlan(ctx, p, seed, 1, viewAllNew, discardEmit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecordKeyEncode contrasts the cost the hot path used to pay:
// a fresh canonical-key string per probe.
func BenchmarkRecordKeyEncode(b *testing.B) {
	rec := value.Record{value.Int(1), value.Int(2), value.Int(3)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rec.Key()
	}
}
