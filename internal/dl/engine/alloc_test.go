package engine

import (
	"testing"

	"repro/internal/dl/parser"
	"repro/internal/dl/typecheck"
	"repro/internal/dl/value"
)

// probeSetup builds a settled runtime for a two-way join whose matches are
// always rejected by a trailing filter, so seeding the join plan exercises
// the full arrangement probe path (key encode, bucket lookup, bucket
// iteration, binds, filter) without emitting — i.e. without constructing
// head records, which necessarily allocate.
func probeSetup(t testing.TB) (*Runtime, *plan, value.Record) {
	t.Helper()
	tree, err := parser.Parse(`
		input relation R(a: int, b: int)
		input relation S(b: int, c: int)
		output relation O(a: int, c: int)
		O(a, c) :- R(a, b), S(b, c), c > 1000000.
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := typecheck.Check(tree)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ups []Update
	for i := int64(0); i < 16; i++ {
		ups = append(ups, Insert("R", value.Record{value.Int(1), value.Int(i % 4)}))
		ups = append(ups, Insert("S", value.Record{value.Int(i % 4), value.Int(i)}))
	}
	if _, err := rt.Apply(ups); err != nil {
		t.Fatal(err)
	}
	head := rt.relByName["O"]
	cr := rt.rulesByHead[head][0]
	p := cr.plansByBody[0] // seeded at R: probes the arrangement on S
	if p == nil {
		t.Fatal("no plan seeded at body literal 0")
	}
	return rt, p, value.Record{value.Int(1), value.Int(2)}
}

var discardEmit emitFunc = func(value.Record, string, uint64, int64) error { return nil }

// TestArrangementProbeZeroAlloc pins the tentpole allocation win: once the
// evaluation context's scratch buffers are warm, probing an arrangement
// performs zero allocations — keys are encoded into a reused buffer and
// looked up via Go's zero-copy []byte map access.
func TestArrangementProbeZeroAlloc(t *testing.T) {
	rt, p, seed := probeSetup(t)
	ctx := &evalCtx{}
	run := func() {
		if err := rt.runPlan(ctx, p, seed, "", 1, viewAllNew, discardEmit); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch buffers
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("arrangement probe hit path allocates %.1f times per probe, want 0", allocs)
	}
}

// TestProvenanceRecordPoolZeroAlloc guards the journaled provenance store
// paths: re-recording an already-known derivation (the steady-state case —
// every re-derivation of a live fact), journaling and flushing a
// retraction, and full record/retract/drop churn all run allocation-free
// once warm — sigs are order-independent hashes computed in caller-owned
// scratch buffers, journal and ref arenas retain their capacity across
// flushes, and derivation/fact containers recycle through the store's
// freelists.
func TestProvenanceRecordPoolZeroAlloc(t *testing.T) {
	ps := newProvStore(0)
	head := &relState{id: 1}
	in := &relState{id: 2}
	rec := value.Record{value.Int(7), value.Int(8)}
	key := rec.Key()
	trail := []provInput{
		{rs: in, rec: value.Record{value.Int(1), value.Int(2)}},
		{rs: in, rec: value.Record{value.Int(3), value.Int(4)}},
	}
	const label = "O :- R(..), S(..)"
	lh := provLabelHash(label)
	var sigBuf []byte
	sig := sigHash(&sigBuf, lh, trail)
	dg := provDigest(head.id, key)
	ps.j.record(dg, head.id, rec, sig, label, 0, trail, false)
	ps.flush()

	// Duplicate record: sig hashed in caller scratch, journaled, matched
	// at replay, seq refreshed, dropped.
	if allocs := testing.AllocsPerRun(200, func() {
		s := sigHash(&sigBuf, lh, trail)
		ps.j.record(dg, head.id, rec, s, label, 0, trail, false)
		ps.flush()
	}); allocs != 0 {
		t.Errorf("duplicate record+flush: %v allocs/op, want 0", allocs)
	}

	// Journaled retraction with no matching derivation left after the
	// first cycle: sig hash, journal append, deferred replay scan.
	ps.j.unrecord(dg, sig)
	ps.flush()
	if allocs := testing.AllocsPerRun(200, func() {
		s := sigHash(&sigBuf, lh, trail)
		ps.j.unrecord(dg, s)
		ps.flush()
	}); allocs != 0 {
		t.Errorf("unrecord+flush: %v allocs/op, want 0", allocs)
	}

	// Steady-state churn (record a new derivation, retract it, drop the
	// fact) recycles every container through the freelists; nothing is
	// materialized per cycle.
	churn := func() {
		s := sigHash(&sigBuf, lh, trail)
		ps.j.record(dg, head.id, rec, s, label, 0, trail, false)
		ps.j.unrecord(dg, s)
		ps.j.drop(dg)
		ps.flush()
	}
	churn()
	if allocs := testing.AllocsPerRun(200, churn); allocs != 0 {
		t.Errorf("record/unrecord/drop churn: %v allocs/op, want 0", allocs)
	}
}

// BenchmarkRecordKeyCached measures the arrangement probe hit path the
// cached-key refactor optimizes (the per-probe Record.Key() allocation it
// removed would show up as allocs/op here; the bench asserts the shape via
// ReportAllocs).
func BenchmarkRecordKeyCached(b *testing.B) {
	rt, p, seed := probeSetup(b)
	ctx := &evalCtx{}
	if err := rt.runPlan(ctx, p, seed, "", 1, viewAllNew, discardEmit); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.runPlan(ctx, p, seed, "", 1, viewAllNew, discardEmit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecordKeyEncode contrasts the cost the hot path used to pay:
// a fresh canonical-key string per probe.
func BenchmarkRecordKeyEncode(b *testing.B) {
	rec := value.Record{value.Int(1), value.Int(2), value.Int(3)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rec.Key()
	}
}
