package engine

import (
	"fmt"

	"repro/internal/dl/ast"
	"repro/internal/dl/typecheck"
	"repro/internal/dl/value"
)

// NaiveEval computes every relation of a checked program from scratch by
// naive stratified fixpoint iteration over the given input contents. It is
// deliberately independent of the incremental machinery (no plans, no
// indexes, no deltas): property tests compare the two evaluators to enforce
// the engine's central invariant, and the baseline controllers use it as
// the "recompute everything" strategy the paper argues against.
//
// inputs maps input relation names to their records. The result maps every
// relation name (inputs included) to its sorted contents.
func NaiveEval(prog *typecheck.Program, inputs map[string][]value.Record) (map[string][]value.Record, error) {
	n := &naiveState{
		prog: prog,
		data: make(map[string]map[string]value.Record),
	}
	for _, rel := range prog.Relations {
		n.data[rel.Name] = make(map[string]value.Record)
	}
	for name, recs := range inputs {
		rel := prog.Relation(name)
		if rel == nil {
			return nil, fmt.Errorf("engine: naive: unknown relation %q", name)
		}
		if rel.Role != ast.RoleInput {
			return nil, fmt.Errorf("engine: naive: relation %q is not an input", name)
		}
		for _, rec := range recs {
			if err := rel.CheckRecord(rec); err != nil {
				return nil, err
			}
			n.data[name][rec.Key()] = rec
		}
	}

	// Stratify: same dependency analysis as the incremental engine, over
	// user relations only (group_by is evaluated inline here).
	relID := make(map[string]int, len(prog.Relations))
	for i, rel := range prog.Relations {
		relID[rel.Name] = i
	}
	var edges []depEdge
	for _, rule := range prog.Rules {
		for _, term := range rule.Body {
			if lit, ok := term.(*typecheck.LiteralTerm); ok {
				edges = append(edges, depEdge{
					from:    relID[lit.Rel.Name],
					to:      relID[rule.Head.Name],
					special: lit.Negated || rule.GroupBy != nil,
				})
			}
		}
	}
	stratumOf, strata, _, err := stratify(len(prog.Relations), edges)
	if err != nil {
		return nil, err
	}
	rulesByStratum := make([][]*typecheck.Rule, len(strata))
	for _, rule := range prog.Rules {
		s := stratumOf[relID[rule.Head.Name]]
		rulesByStratum[s] = append(rulesByStratum[s], rule)
	}

	for s := range strata {
		// Iterate the stratum's rules to a fixpoint.
		for {
			grew := false
			for _, rule := range rulesByStratum[s] {
				added, err := n.evalRule(rule)
				if err != nil {
					return nil, err
				}
				grew = grew || added
			}
			if !grew {
				break
			}
		}
	}

	out := make(map[string][]value.Record, len(prog.Relations))
	for _, rel := range prog.Relations {
		rs := &relState{counts: make(map[string]countEntry)}
		for k, rec := range n.data[rel.Name] {
			rs.counts[k] = countEntry{rec: rec, count: 1}
		}
		out[rel.Name] = rs.contents()
	}
	return out, nil
}

type naiveState struct {
	prog *typecheck.Program
	data map[string]map[string]value.Record
}

// evalRule enumerates all satisfying bindings of the rule body (in source
// order, which the type checker guarantees is safe) and inserts head
// tuples. For group_by rules it collects the bindings first and aggregates.
// Reports whether any new tuple was added.
func (n *naiveState) evalRule(rule *typecheck.Rule) (bool, error) {
	env := make([]value.Value, len(rule.Slots))
	added := false

	var groups map[string]*naiveGroup
	if rule.GroupBy != nil {
		groups = make(map[string]*naiveGroup)
	}

	atEnd := func() error {
		if rule.GroupBy != nil {
			return n.collectGroup(rule, env, groups)
		}
		rec := make(value.Record, len(rule.HeadExprs))
		for i, e := range rule.HeadExprs {
			v, err := e.Eval(env)
			if err != nil {
				return err
			}
			rec[i] = v
		}
		key := rec.Key()
		if _, ok := n.data[rule.Head.Name][key]; !ok {
			n.data[rule.Head.Name][key] = rec
			added = true
		}
		return nil
	}

	body := rule.Body
	if rule.GroupBy != nil {
		body = body[:len(body)-1]
	}

	var walk func(ti int) error
	walk = func(ti int) error {
		if ti == len(body) {
			return atEnd()
		}
		switch term := body[ti].(type) {
		case *typecheck.CondTerm:
			v, err := term.Expr.Eval(env)
			if err != nil {
				return err
			}
			if !v.Bool() {
				return nil
			}
			return walk(ti + 1)
		case *typecheck.AssignTerm:
			v, err := term.Expr.Eval(env)
			if err != nil {
				return err
			}
			env[term.Slot] = v
			return walk(ti + 1)
		case *typecheck.LiteralTerm:
			if term.Negated {
				match, err := n.anyMatch(term, env)
				if err != nil {
					return err
				}
				if match {
					return nil
				}
				return walk(ti + 1)
			}
			for _, rec := range n.data[term.Rel.Name] {
				ok, err := n.matchBind(term, rec, env)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				if err := walk(ti + 1); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("engine: naive: unexpected body term %T", term)
		}
	}
	if err := walk(0); err != nil {
		return false, err
	}

	if rule.GroupBy != nil {
		ok, err := n.emitGroups(rule, env, groups)
		if err != nil {
			return false, err
		}
		added = added || ok
	}
	return added, nil
}

// matchBind checks rec against the literal's checks and binds its slots.
func (n *naiveState) matchBind(lit *typecheck.LiteralTerm, rec value.Record, env []value.Value) (bool, error) {
	// Bind first: a repeated variable's first occurrence may be a bind and
	// later ones checks within the same literal.
	for col, slot := range lit.BindSlots {
		if slot >= 0 {
			env[slot] = rec[col]
		}
	}
	for _, chk := range lit.Checks {
		v, err := chk.Expr.Eval(env)
		if err != nil {
			return false, err
		}
		if !v.Equal(rec[chk.Col]) {
			return false, nil
		}
	}
	return true, nil
}

// anyMatch reports whether any record of the negated literal's relation
// matches its (fully bound) checks.
func (n *naiveState) anyMatch(lit *typecheck.LiteralTerm, env []value.Value) (bool, error) {
	for _, rec := range n.data[lit.Rel.Name] {
		ok := true
		for _, chk := range lit.Checks {
			v, err := chk.Expr.Eval(env)
			if err != nil {
				return false, err
			}
			if !v.Equal(rec[chk.Col]) {
				ok = false
				break
			}
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

type naiveGroup struct {
	keyVals []value.Value
	// distinct bindings (projected onto all slots except the output),
	// keyed by encoding.
	bindings map[string][]value.Value
}

func (n *naiveState) collectGroup(rule *typecheck.Rule, env []value.Value, groups map[string]*naiveGroup) error {
	gb := rule.GroupBy
	keyVals := make([]value.Value, len(gb.KeySlots))
	var enc []byte
	for i, s := range gb.KeySlots {
		keyVals[i] = env[s]
		enc = env[s].Encode(enc)
	}
	g := groups[string(enc)]
	if g == nil {
		g = &naiveGroup{keyVals: keyVals, bindings: make(map[string][]value.Value)}
		groups[string(enc)] = g
	}
	// The distinct binding excludes the aggregate output slot.
	var benc []byte
	snap := make([]value.Value, len(env))
	copy(snap, env)
	for s := 0; s < len(rule.Slots); s++ {
		if s == gb.OutSlot {
			continue
		}
		if env[s].IsValid() {
			benc = env[s].Encode(benc)
		} else {
			benc = append(benc, 0xff)
		}
	}
	g.bindings[string(benc)] = snap
	return nil
}

func (n *naiveState) emitGroups(rule *typecheck.Rule, env []value.Value, groups map[string]*naiveGroup) (bool, error) {
	gb := rule.GroupBy
	added := false
	for _, g := range groups {
		var acc value.Value
		var sum int64
		var bitSum uint64
		count := 0
		for _, binding := range g.bindings {
			count++
			if gb.Arg == nil {
				continue
			}
			v, err := gb.Arg.Eval(binding)
			if err != nil {
				return false, err
			}
			switch gb.Agg {
			case "sum":
				if v.Kind() == value.KindBit {
					bitSum += v.Bit()
				} else {
					sum += v.Int()
				}
			case "min":
				if !acc.IsValid() || v.Compare(acc) < 0 {
					acc = v
				}
			case "max":
				if !acc.IsValid() || v.Compare(acc) > 0 {
					acc = v
				}
			}
		}
		if count == 0 {
			continue
		}
		var out value.Value
		switch gb.Agg {
		case "count":
			out = value.Int(int64(count))
		case "sum":
			if gb.Arg.Type().Kind == value.TBit {
				out = value.BitW(bitSum, gb.Arg.Type().Width)
			} else {
				out = value.Int(sum)
			}
		default:
			out = acc
		}
		for i, s := range gb.KeySlots {
			env[s] = g.keyVals[i]
		}
		env[gb.OutSlot] = out
		rec := make(value.Record, len(rule.HeadExprs))
		for i, e := range rule.HeadExprs {
			v, err := e.Eval(env)
			if err != nil {
				return false, err
			}
			rec[i] = v
		}
		key := rec.Key()
		if _, ok := n.data[rule.Head.Name][key]; !ok {
			n.data[rule.Head.Name][key] = rec
			added = true
		}
	}
	return added, nil
}
