// Reachability: the paper's §1 motivating example, standalone.
//
// The two-rule labeling program runs in the incremental engine while
// links fail and recover; every transaction prints only the labels that
// changed — the output deltas an SDN controller would translate into
// forwarding-table updates. A full recomputation runs alongside to show
// the work an imperative controller would redo each time.
//
//	go run ./examples/reachability
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/baseline"
	"repro/internal/dl"
	"repro/internal/dl/engine"
	"repro/internal/dl/value"
	"repro/internal/workload"
)

func main() {
	prog, err := dl.Compile(workload.ReachabilityRules)
	check(err)
	rt, err := prog.NewRuntime(engine.Options{})
	check(err)

	// A small spine-and-leaf-ish topology:
	//
	//	        gw
	//	       /  \
	//	     s1    s2
	//	    /  \     \
	//	  h1    h2    h3
	edges := [][2]string{
		{"gw", "s1"}, {"gw", "s2"},
		{"s1", "h1"}, {"s1", "h2"}, {"s2", "h3"},
		{"s2", "h2"}, // redundant path to h2
	}
	var load []engine.Update
	load = append(load, engine.Insert("GivenLabel", rec("gw", "external")))
	for _, e := range edges {
		load = append(load, engine.Insert("Edge", rec(e[0], e[1])))
	}
	delta, err := rt.Apply(load)
	check(err)
	fmt.Println("initial topology loaded; labels:")
	printDelta(delta)

	apply := func(what string, ups ...engine.Update) {
		start := time.Now()
		delta, err := rt.Apply(ups)
		check(err)
		fmt.Printf("\n%s (%v):\n", what, time.Since(start).Round(time.Microsecond))
		printDelta(delta)
	}

	// Losing s1-h2 changes nothing: h2 is still reachable via s2.
	apply("link s1-h2 fails (redundant: no label changes expected)",
		engine.Delete("Edge", rec("s1", "h2")))

	// Losing s2-h2 as well cuts h2 off.
	apply("link s2-h2 fails (h2 is now unreachable)",
		engine.Delete("Edge", rec("s2", "h2")))

	// Recovery restores the label incrementally.
	apply("link s1-h2 recovers", engine.Insert("Edge", rec("s1", "h2")))

	// Compare with what an imperative controller recomputes every time.
	given := map[string][]string{"gw": {"external"}}
	live := [][2]string{{"gw", "s1"}, {"gw", "s2"}, {"s1", "h1"}, {"s2", "h3"}, {"s1", "h2"}}
	start := time.Now()
	labels := baseline.ComputeLabels(given, live)
	fmt.Printf("\nfull recomputation for comparison: %d labels in %v (every change pays this)\n",
		baseline.CountLabels(labels), time.Since(start).Round(time.Microsecond))
}

func rec(a, b string) value.Record {
	return value.Record{value.String(a), value.String(b)}
}

func printDelta(delta engine.Delta) {
	z, ok := delta["Label"]
	if !ok {
		fmt.Println("  (no label changes)")
		return
	}
	for _, e := range z.Entries() {
		sign := "+"
		if e.Weight < 0 {
			sign = "-"
		}
		fmt.Printf("  %s Label%v\n", sign, e.Rec)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
