// snvs: the paper's §4.3 example system, exercised feature by feature.
//
// A three-port switch (two access ports in VLAN 10, one trunk carrying
// VLANs 10 and 20) is configured entirely through OVSDB transactions. The
// example then demonstrates every snvs feature: VLAN admission and
// tagging, flooding, MAC learning through the digest feedback loop,
// static MACs, ingress mirroring, ACLs, and incremental retraction when
// configuration is removed.
//
//	go run ./examples/snvs
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/ovsdb"
	"repro/internal/p4rt"
	"repro/internal/packet"
	"repro/internal/snvs"
	"repro/internal/switchsim"
)

type demo struct {
	db     *ovsdb.Client
	sw     *switchsim.Switch
	fabric *switchsim.Fabric
	ctrl   *core.Controller
	hosts  map[string]*switchsim.Host
}

func main() {
	d := start()
	defer d.ctrl.Stop()

	fmt.Println("=== configuration through the management plane ===")
	d.transact(
		ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
			"name": "snvs0", "flood_unknown": true,
		}),
		ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
		}),
		ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p2", "port_num": int64(2), "vlan_mode": "access", "tag": int64(10),
		}),
		ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p3", "port_num": int64(3), "vlan_mode": "trunk",
			"trunks": ovsdb.NewSet(int64(10), int64(20)),
		}),
	)
	d.wait("vlan_ok", 4)
	d.report("after port configuration")

	fmt.Println("\n=== flooding and the learning feedback loop ===")
	h1, h2, h3 := d.hosts["h1"], d.hosts["h2"], d.hosts["h3"]
	macH1, macH2 := packet.MAC(0xaa01), packet.MAC(0xaa02)
	must(h1.Send(untagged(0xffffffffffff, macH1)))
	fmt.Printf("h1 broadcast: h2 got %d (untagged), h3 got %d (tagged for the trunk)\n",
		h2.ReceivedCount(), h3.ReceivedCount())
	showTag(h3.Received()[0])
	h2.Received()
	d.wait("dmac", 1)
	must(h2.Send(untagged(macH1, macH2)))
	fmt.Printf("h2 unicast to learned MAC: h1 got %d, h3 got %d (no flood)\n",
		h1.ReceivedCount(), h3.ReceivedCount())
	h1.Received()

	fmt.Println("\n=== VLAN isolation on the trunk ===")
	must(h3.Send(tagged(0xffffffffffff, 0xbb03, 20)))
	fmt.Printf("VLAN 20 broadcast from trunk: h1 got %d, h2 got %d (isolated)\n",
		h1.ReceivedCount(), h2.ReceivedCount())
	before := d.sw.Dropped()
	must(h3.Send(tagged(0xffffffffffff, 0xbb03, 30)))
	fmt.Printf("VLAN 30 (not allowed on trunk): dropped=%v\n", d.sw.Dropped() > before)

	fmt.Println("\n=== port mirroring ===")
	d.transact(ovsdb.OpInsert("Mirror", map[string]ovsdb.Value{
		"src_port": int64(1), "dst_port": int64(4),
	}))
	d.wait("mirror_ingress", 1)
	h4 := d.hosts["h4"]
	must(h1.Send(untagged(macH2, macH1)))
	fmt.Printf("h1 -> h2 with mirror on port 1: h2 got %d, mirror target got %d\n",
		h2.ReceivedCount(), h4.ReceivedCount())
	h2.Received()
	h4.Received()

	fmt.Println("\n=== ACL: denied source still mirrored ===")
	d.transact(ovsdb.OpInsert("Acl", map[string]ovsdb.Value{
		"src_mac": int64(macH1), "deny": true,
	}))
	d.wait("acl_src", 1)
	must(h1.Send(untagged(macH2, macH1)))
	fmt.Printf("denied h1 -> h2: h2 got %d, mirror still got %d\n",
		h2.ReceivedCount(), h4.ReceivedCount())
	h4.Received()

	fmt.Println("\n=== incremental retraction ===")
	d.transact(ovsdb.OpDelete("Port", ovsdb.Cond("name", "==", "p2")))
	d.wait("vlan_ok", 3)
	d.report("after removing p2 (only its entries were retracted)")
}

func start() *demo {
	schema, err := snvs.Schema()
	must(err)
	db := ovsdb.NewDatabase(schema)
	srv := ovsdb.NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	go srv.Serve(ln)

	sw, err := switchsim.New("snvs0", switchsim.Config{Program: snvs.Pipeline()})
	must(err)
	p4Ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	go sw.Serve(p4Ln)

	fabric := switchsim.NewFabric()
	must(fabric.AddSwitch(sw))
	d := &demo{sw: sw, fabric: fabric, hosts: make(map[string]*switchsim.Host)}
	for i, name := range []string{"h1", "h2", "h3", "h4"} {
		h, err := fabric.AttachHost(name, "snvs0", uint16(i+1))
		must(err)
		d.hosts[name] = h
	}

	d.db, err = ovsdb.Dial(ln.Addr().String())
	must(err)
	p4c, err := p4rt.Dial(p4Ln.Addr().String())
	must(err)
	d.ctrl, err = core.New(core.Config{Rules: snvs.Rules, Database: "snvs"}, d.db, p4c)
	must(err)
	return d
}

func (d *demo) transact(ops ...ovsdb.Operation) {
	_, err := d.db.TransactErr("snvs", ops...)
	must(err)
}

func (d *demo) wait(table string, want int) {
	deadline := time.Now().Add(5 * time.Second)
	for d.sw.Runtime().EntryCount(table) != want {
		if err := d.ctrl.Err(); err != nil {
			log.Fatalf("controller: %v", err)
		}
		if time.Now().After(deadline) {
			log.Fatalf("table %s: have %d entries, want %d",
				table, d.sw.Runtime().EntryCount(table), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func (d *demo) report(when string) {
	fmt.Printf("data-plane tables %s:\n", when)
	for _, t := range []string{"in_vlan", "vlan_ok", "flood", "dmac", "mirror_ingress", "acl_src"} {
		fmt.Printf("  %-15s %d entries\n", t, d.sw.Runtime().EntryCount(t))
	}
}

func untagged(dst, src packet.MAC) []byte {
	e := packet.Ethernet{Dst: dst, Src: src, EtherType: 0x1234}
	return append(e.Append(nil), 0xbe, 0xef)
}

func tagged(dst, src packet.MAC, vid uint16) []byte {
	e := packet.Ethernet{Dst: dst, Src: src, EtherType: packet.EtherTypeVLAN}
	v := packet.VLAN{VID: vid, EtherType: 0x1234}
	return append(v.Append(e.Append(nil)), 0xbe, 0xef)
}

func showTag(frame []byte) {
	var e packet.Ethernet
	rest, err := e.Decode(frame)
	must(err)
	if e.EtherType == packet.EtherTypeVLAN {
		var v packet.VLAN
		_, err := v.Decode(rest)
		must(err)
		fmt.Printf("  trunk frame carries 802.1Q tag: vid=%d\n", v.VID)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
