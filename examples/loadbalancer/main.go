// Load balancer: the paper's §2.2 worst-case workload, observable.
//
// The OVN load-balancer benchmark cold-starts a controller with large
// load balancers and then deletes each one — a pattern where automatic
// incrementality pays indexing overhead for changes that never amortize.
// This example runs the declarative LB program and the hand-written
// translation side by side and prints the cost of each phase.
//
//	go run ./examples/loadbalancer
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/baseline"
	"repro/internal/dl"
	"repro/internal/dl/engine"
	"repro/internal/workload"
)

func main() {
	const vips, backends = 20, 500
	lbs := workload.LBs(vips, backends)
	fmt.Printf("workload: %d load balancers x %d backends (%d entries total)\n\n",
		vips, backends, vips*(1+backends))

	// --- Declarative program on the incremental engine. ---
	prog, err := dl.Compile(baseline.LBRules)
	check(err)
	rt, err := prog.NewRuntime(engine.Options{})
	check(err)

	start := time.Now()
	for _, lb := range lbs {
		_, err := rt.Apply(workload.LBInsertUpdates(lb))
		check(err)
	}
	coldStart := time.Since(start)
	stats := rt.Stats()
	fmt.Printf("engine cold start:  %v (%d tuples, %d index entries held for incrementality)\n",
		coldStart.Round(time.Microsecond), stats.Tuples, stats.IndexEntries)

	start = time.Now()
	for _, lb := range lbs {
		_, err := rt.Apply(workload.LBDeleteUpdates(lb))
		check(err)
	}
	fmt.Printf("engine teardown:    %v\n", time.Since(start).Round(time.Microsecond))

	// --- Hand-written translation (the C implementation's role). ---
	start = time.Now()
	installed := baseline.NewEntrySet()
	for _, lb := range lbs {
		for id, e := range baseline.LBEntries([]baseline.LB{lb}).Entries {
			installed.Entries[id] = e
		}
	}
	fmt.Printf("\nbaseline cold start: %v (%d entries, no auxiliary indexes)\n",
		time.Since(start).Round(time.Microsecond), len(installed.Entries))

	start = time.Now()
	for _, lb := range lbs {
		for id := range baseline.LBEntries([]baseline.LB{lb}).Entries {
			delete(installed.Entries, id)
		}
	}
	fmt.Printf("baseline teardown:   %v\n", time.Since(start).Round(time.Microsecond))

	fmt.Println("\nThe engine pays for indexing it never gets to amortize on this")
	fmt.Println("workload — the overhead the paper reports as ~2x CPU and ~5x RAM.")
	fmt.Println("Run 'nerpa-bench -exp lb' for the measured comparison.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
