// Quickstart: the full stack in one process.
//
// This example boots the three planes — an OVSDB management database, a
// behavioral P4 switch, and the Nerpa controller between them — inserts
// two ports into the database, and shows a packet being flooded, learned,
// and then unicast. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/ovsdb"
	"repro/internal/p4rt"
	"repro/internal/packet"
	"repro/internal/snvs"
	"repro/internal/switchsim"
)

func main() {
	// --- Management plane: an OVSDB server holding the snvs schema. ---
	schema, err := snvs.Schema()
	check(err)
	db := ovsdb.NewDatabase(schema)
	ovsdbSrv := ovsdb.NewServer(db)
	ovsdbLn, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go ovsdbSrv.Serve(ovsdbLn)
	defer ovsdbSrv.Close()

	// --- Data plane: a behavioral switch running snvs.p4. ---
	sw, err := switchsim.New("snvs0", switchsim.Config{Program: snvs.Pipeline()})
	check(err)
	p4Ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go sw.Serve(p4Ln)
	defer sw.Close()

	fabric := switchsim.NewFabric()
	check(fabric.AddSwitch(sw))
	h1, err := fabric.AttachHost("h1", "snvs0", 1)
	check(err)
	h2, err := fabric.AttachHost("h2", "snvs0", 2)
	check(err)

	// --- Control plane: the Nerpa controller wires the planes together. --
	dbc, err := ovsdb.Dial(ovsdbLn.Addr().String())
	check(err)
	defer dbc.Close()
	p4c, err := p4rt.Dial(p4Ln.Addr().String())
	check(err)
	defer p4c.Close()
	ctrl, err := core.New(core.Config{Rules: snvs.Rules, Database: "snvs"}, dbc, p4c)
	check(err)
	defer ctrl.Stop()
	fmt.Println("controller up: cross-plane program compiled and type-checked")

	// --- Configure the network through the management plane only. ---
	_, err = dbc.TransactErr("snvs",
		ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
			"name": "snvs0", "flood_unknown": true,
		}),
		ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
		}),
		ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p2", "port_num": int64(2), "vlan_mode": "access", "tag": int64(10),
		}),
	)
	check(err)
	waitFor(func() bool { return sw.Runtime().EntryCount("in_vlan") == 2 })
	fmt.Println("ports configured: controller derived VLAN, admission, and flood entries")

	// --- Traffic: flood, learn, unicast. ---
	macH1, macH2 := packet.MAC(0xaa01), packet.MAC(0xaa02)
	frame := func(dst, src packet.MAC) []byte {
		e := packet.Ethernet{Dst: dst, Src: src, EtherType: 0x1234}
		return append(e.Append(nil), 'h', 'i')
	}
	check(h1.Send(frame(0xffffffffffff, macH1)))
	fmt.Printf("h1 broadcast: h2 received %d frame(s) (flooded)\n", h2.ReceivedCount())
	h2.Received()

	waitFor(func() bool { return sw.Runtime().EntryCount("dmac") == 1 })
	fmt.Println("MAC learning digest processed: forwarding entry installed")

	check(h2.Send(frame(macH1, macH2)))
	fmt.Printf("h2 -> h1 unicast: h1 received %d frame(s), no flooding\n", h1.ReceivedCount())

	recs, err := ctrl.Contents("Dmac")
	check(err)
	fmt.Printf("control-plane Dmac relation: %d record(s)\n", len(recs))
	for _, r := range recs {
		fmt.Printf("  Dmac%v\n", r)
	}
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out waiting for controller convergence")
		}
		time.Sleep(time.Millisecond)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
