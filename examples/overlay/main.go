// Tunnel overlay: tenant networks over a shared leaf-spine fabric.
//
// The paper situates Nerpa in network virtualization, where OVN-style
// systems build tenant overlays with tunnels. This example runs the
// overlay program from internal/overlay: traffic entering a leaf is
// classified by tenant, encapsulated in a tunnel header carrying the
// destination leaf and the tenant VNI, routed by a spine that only ever
// sees tunnel headers, and decapsulated at the destination leaf. Two
// tenants deliberately share a MAC address to show the isolation.
//
//	go run ./examples/overlay
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/overlay"
	"repro/internal/ovsdb"
	"repro/internal/p4"
	"repro/internal/p4rt"
	"repro/internal/packet"
	"repro/internal/switchsim"
)

func main() {
	schema, err := overlay.Schema()
	check(err)
	db := ovsdb.NewDatabase(schema)
	srv := ovsdb.NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go srv.Serve(ln)
	defer srv.Close()

	fabric := switchsim.NewFabric()
	mk := func(name string, prog *p4.Program) (*switchsim.Switch, *p4rt.Client) {
		sw, err := switchsim.New(name, switchsim.Config{Program: prog})
		check(err)
		swLn, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		go sw.Serve(swLn)
		check(fabric.AddSwitch(sw))
		c, err := p4rt.Dial(swLn.Addr().String())
		check(err)
		return sw, c
	}
	leaf1, c1 := mk("leaf1", overlay.LeafPipeline())
	leaf2, c2 := mk("leaf2", overlay.LeafPipeline())
	spine, cs := mk("spine", overlay.SpinePipeline())
	_ = leaf2

	// tenant 100: red; tenant 200: blue. Both have a host with MAC 0xA1.
	red1, err := fabric.AttachHost("red1", "leaf1", 1)
	check(err)
	red2, err := fabric.AttachHost("red2", "leaf2", 1)
	check(err)
	blue1, err := fabric.AttachHost("blue1", "leaf1", 2)
	check(err)
	blue2, err := fabric.AttachHost("blue2", "leaf2", 2)
	check(err)
	check(fabric.LinkSwitches("leaf1", overlay.UplinkPort, "spine", 1))
	check(fabric.LinkSwitches("leaf2", overlay.UplinkPort, "spine", 2))

	dbc, err := ovsdb.Dial(ln.Addr().String())
	check(err)
	defer dbc.Close()
	ctrl, err := core.NewWithClasses(core.Config{
		Rules: overlay.Rules, Database: "overlay",
	}, dbc, []core.DeviceClass{
		{Name: "Leaf", PerDevice: true, Devices: []core.Device{
			{ID: "leaf1", DP: c1}, {ID: "leaf2", DP: c2},
		}},
		{Name: "Spine", Devices: []core.Device{{ID: "spine", DP: cs}}},
	})
	check(err)
	defer ctrl.Stop()

	_, err = dbc.TransactErr("overlay",
		ovsdb.OpInsert("Leaf", map[string]ovsdb.Value{"name": "leaf1", "id": int64(1), "spine_port": int64(1)}),
		ovsdb.OpInsert("Leaf", map[string]ovsdb.Value{"name": "leaf2", "id": int64(2), "spine_port": int64(2)}),
		// red tenant (VNI 100): MAC 0xA1 on leaf1, 0xA2 on leaf2.
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(0xA1), "leaf": "leaf1", "port": int64(1), "tenant": int64(100)}),
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(0xA2), "leaf": "leaf2", "port": int64(1), "tenant": int64(100)}),
		// blue tenant (VNI 200): ALSO MAC 0xA1 (on leaf2!) plus 0xB1.
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(0xB1), "leaf": "leaf1", "port": int64(2), "tenant": int64(200)}),
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(0xA1), "leaf": "leaf2", "port": int64(2), "tenant": int64(200)}),
	)
	check(err)
	waitFor(func() bool {
		return leaf1.Runtime().EntryCount("dmac_remote") == 2 &&
			spine.Runtime().EntryCount("route") == 2
	})
	fmt.Println("overlay plumbed: tenant tables, encap/decap, spine routes")

	frame := func(dst, src packet.MAC) []byte {
		e := packet.Ethernet{Dst: dst, Src: src, EtherType: 0x1234}
		return append(e.Append(nil), 'h', 'i')
	}

	check(red1.Send(frame(0xA2, 0xA1)))
	fmt.Printf("red1 -> red2 across the fabric: red2 got %d (tunneled via spine)\n",
		red2.ReceivedCount())
	c, _ := spine.Runtime().Counters("route")
	fmt.Printf("spine saw %d tunnel frame(s); it never inspects tenant MACs\n", c.Hits)

	check(blue1.Send(frame(0xA1, 0xB1)))
	fmt.Printf("blue1 -> MAC 0xA1: blue2 got %d, red1 got %d (same MAC, different tenant)\n",
		blue2.ReceivedCount(), red1.ReceivedCount())

	before := leaf1.Dropped()
	check(red1.Send(frame(0xB1, 0xA1)))
	fmt.Printf("red1 -> blue MAC: dropped=%v (tenants cannot reach each other)\n",
		leaf1.Dropped() > before)
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out waiting for convergence")
		}
		time.Sleep(time.Millisecond)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
