// Spine-leaf: one controller, two device classes, two P4 programs.
//
// The paper's §4.1 notes that the framework "can generally support
// multiple classes of devices (e.g., spine, leaf switches), each running
// a different P4 program" with management relations reflecting the
// classes. This example builds exactly that: two leaf switches and a
// spine (each leaf's relations are per-device, so the same rules compute
// *different* entries for each leaf), configured entirely through two
// OVSDB tables.
//
//	go run ./examples/spineleaf
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/ovsdb"
	"repro/internal/p4"
	"repro/internal/p4rt"
	"repro/internal/packet"
	"repro/internal/spineleaf"
	"repro/internal/switchsim"
)

func main() {
	// --- Management plane. ---
	schema, err := spineleaf.Schema()
	check(err)
	db := ovsdb.NewDatabase(schema)
	srv := ovsdb.NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go srv.Serve(ln)
	defer srv.Close()

	// --- Data plane: two leaves + one spine, wired into a fabric. ---
	fabric := switchsim.NewFabric()
	mk := func(name string, prog *p4.Program) (*switchsim.Switch, *p4rt.Client) {
		sw, err := switchsim.New(name, switchsim.Config{Program: prog})
		check(err)
		swLn, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		go sw.Serve(swLn)
		check(fabric.AddSwitch(sw))
		client, err := p4rt.Dial(swLn.Addr().String())
		check(err)
		return sw, client
	}
	leaf1, c1 := mk("leaf1", spineleaf.LeafPipeline())
	leaf2, c2 := mk("leaf2", spineleaf.LeafPipeline())
	spine, cs := mk("spine", spineleaf.SpinePipeline())
	h1, err := fabric.AttachHost("h1", "leaf1", 1)
	check(err)
	h2, err := fabric.AttachHost("h2", "leaf2", 1)
	check(err)
	check(fabric.LinkSwitches("leaf1", spineleaf.UplinkPort, "spine", 1))
	check(fabric.LinkSwitches("leaf2", spineleaf.UplinkPort, "spine", 2))

	// --- One controller, two classes. ---
	dbc, err := ovsdb.Dial(ln.Addr().String())
	check(err)
	defer dbc.Close()
	ctrl, err := core.NewWithClasses(core.Config{
		Rules:    spineleaf.Rules,
		Database: "spineleaf",
	}, dbc, []core.DeviceClass{
		{Name: "Leaf", PerDevice: true, Devices: []core.Device{
			{ID: "leaf1", DP: c1}, {ID: "leaf2", DP: c2},
		}},
		{Name: "Spine", Devices: []core.Device{{ID: "spine", DP: cs}}},
	})
	check(err)
	defer ctrl.Stop()
	fmt.Println("controller up: leaf and spine programs type-checked against shared rules")

	// --- Configure the fabric through the database. ---
	_, err = dbc.TransactErr("spineleaf",
		ovsdb.OpInsert("Leaf", map[string]ovsdb.Value{"name": "leaf1", "spine_port": int64(1)}),
		ovsdb.OpInsert("Leaf", map[string]ovsdb.Value{"name": "leaf2", "spine_port": int64(2)}),
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(0xaa01), "leaf": "leaf1", "port": int64(1)}),
		ovsdb.OpInsert("Host", map[string]ovsdb.Value{"mac": int64(0xaa02), "leaf": "leaf2", "port": int64(1)}),
	)
	check(err)
	waitFor(func() bool {
		return leaf1.Runtime().EntryCount("dmac") == 2 &&
			leaf2.Runtime().EntryCount("dmac") == 2 &&
			spine.Runtime().EntryCount("fwd") == 2
	})
	fmt.Println("configured: 2 hosts, 2 leaves")
	show := func(sw *switchsim.Switch, table string) {
		entries, err := sw.Runtime().Entries(table)
		check(err)
		for _, e := range entries {
			fmt.Printf("  %-5s %s[dst=%04x] -> %s(port %d)\n",
				sw.Name(), table, e.Matches[0].Value, e.Action, e.Params[0])
		}
	}
	fmt.Println("per-device entries (same rules, different switches):")
	show(leaf1, "dmac")
	show(leaf2, "dmac")
	show(spine, "fwd")

	// --- Cross-fabric unicast. ---
	e := packet.Ethernet{Dst: 0xaa02, Src: 0xaa01, EtherType: 0x1234}
	check(h1.Send(append(e.Append(nil), 'h', 'i')))
	fmt.Printf("\nh1 -> h2 across leaf1/spine/leaf2: h2 received %d frame(s)\n",
		h2.ReceivedCount())
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out waiting for convergence")
		}
		time.Sleep(time.Millisecond)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
