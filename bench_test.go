// Benchmarks regenerating the paper's evaluation (one per table/figure;
// see DESIGN.md for the experiment index) plus the ablations DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
package nerpa

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/dl"
	"repro/internal/dl/engine"
	"repro/internal/dl/value"
	"repro/internal/ovsdb"
	"repro/internal/packet"
	"repro/internal/workload"
)

// --- T1 (§4.3): per-port latency through the full stack ---

func BenchmarkT1PortScaleFullStack(b *testing.B) {
	s, err := bench.StartStack()
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.Transact(ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
		"name": "snvs0", "flood_unknown": true,
	})); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Transact(ovsdb.OpInsert("Port", workload.AccessPortRow(i, 10))); err != nil {
			b.Fatal(err)
		}
		if err := s.WaitEntries("in_vlan", i+1, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T3 (§2.2): load-balancer cold start + teardown ---

func BenchmarkT3LoadBalancerEngine(b *testing.B) {
	lbs := workload.LBs(10, 200)
	prog, err := dl.Compile(baseline.LBRules)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := prog.NewRuntime(engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, lb := range lbs {
			if _, err := rt.Apply(workload.LBInsertUpdates(lb)); err != nil {
				b.Fatal(err)
			}
		}
		for _, lb := range lbs {
			if _, err := rt.Apply(workload.LBDeleteUpdates(lb)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkT3LoadBalancerBaseline(b *testing.B) {
	lbs := workload.LBs(10, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		installed := baseline.NewEntrySet()
		for _, lb := range lbs {
			for id, e := range baseline.LBEntries([]baseline.LB{lb}).Entries {
				installed.Entries[id] = e
			}
		}
		for _, lb := range lbs {
			for id := range baseline.LBEntries([]baseline.LB{lb}).Entries {
				delete(installed.Entries, id)
			}
		}
	}
}

// --- T4 (§2.2): steady-state change, incremental vs recompute+diff ---

func benchSnvsEngineLoaded(b *testing.B, ports int) *engine.Runtime {
	b.Helper()
	rt, err := bench.SnvsEngine()
	if err != nil {
		b.Fatal(err)
	}
	var load []engine.Update
	load = append(load, engine.Insert("SwitchCfg", value.Record{
		value.String("u-cfg"), value.Bool(true), value.String("snvs0"),
	}))
	for i := 0; i < ports; i++ {
		load = append(load, engine.Insert("Port", workload.PortRecord(i, 10)))
		load = append(load, engine.Insert("Learn", workload.LearnedRecord(i, i, 10)))
	}
	if _, err := rt.Apply(load); err != nil {
		b.Fatal(err)
	}
	return rt
}

func BenchmarkT4IncrementalPerChange(b *testing.B) {
	for _, ports := range []int{100, 1000, 4000} {
		b.Run(fmt.Sprintf("ports-%d", ports), func(b *testing.B) {
			rt := benchSnvsEngineLoaded(b, ports)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := workload.PortRecord(ports+1, 10)
				if _, err := rt.Apply([]engine.Update{engine.Insert("Port", rec)}); err != nil {
					b.Fatal(err)
				}
				if _, err := rt.Apply([]engine.Update{engine.Delete("Port", rec)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkT4RecomputePerChange(b *testing.B) {
	for _, ports := range []int{100, 1000, 4000} {
		b.Run(fmt.Sprintf("ports-%d", ports), func(b *testing.B) {
			state := baseline.NewSNVSState()
			state.FloodUnknown = true
			for i := 0; i < ports; i++ {
				p := workload.PortCfg(i, 10)
				state.Ports[p.Name] = p
				state.Learned = append(state.Learned, baseline.LearnedMac{
					Mac: uint64(0xaa0000000000 + i), Vlan: p.Tag, Port: p.Num,
				})
			}
			installed := state.DesiredEntries()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := workload.PortCfg(ports+1, 10)
				state.Ports[p.Name] = p
				next := state.DesiredEntries()
				baseline.Diff(installed, next)
				installed = next
				delete(state.Ports, p.Name)
				next = state.DesiredEntries()
				baseline.Diff(installed, next)
				installed = next
			}
		})
	}
}

// --- T5 (§1): labeling under link churn ---

func benchTreeEngine(b *testing.B, n int) (*engine.Runtime, workload.Graph) {
	b.Helper()
	g := workload.RandomTree(n, 7)
	prog, err := dl.Compile(workload.ReachabilityRules)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := prog.NewRuntime(engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	load := []engine.Update{engine.Insert("GivenLabel", value.Record{
		value.String("n0"), value.String("L"),
	})}
	for _, e := range g.Edges {
		load = append(load, workload.EdgeUpdate(workload.EdgeChange{Add: true, Edge: e}))
	}
	if _, err := rt.Apply(load); err != nil {
		b.Fatal(err)
	}
	return rt, g
}

func BenchmarkT5LabelIncremental(b *testing.B) {
	rt, g := benchTreeEngine(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := g.Edges[i%len(g.Edges)]
		if _, err := rt.Apply([]engine.Update{workload.EdgeUpdate(
			workload.EdgeChange{Add: false, Edge: e})}); err != nil {
			b.Fatal(err)
		}
		if _, err := rt.Apply([]engine.Update{workload.EdgeUpdate(
			workload.EdgeChange{Add: true, Edge: e})}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT5LabelRecompute(b *testing.B) {
	g := workload.RandomTree(10000, 7)
	given := map[string][]string{"n0": {"L"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.ComputeLabels(given, g.Edges)
	}
}

// --- F3 (Fig. 3): fragment-controller compilation ---

func BenchmarkF3FragmentCompile(b *testing.B) {
	st := baseline.NewFlowState(func() *baseline.SNVSState {
		s := baseline.NewSNVSState()
		s.FloodUnknown = true
		for i := 0; i < 64; i++ {
			p := workload.PortCfg(i, 8)
			s.Ports[p.Name] = p
		}
		return s
	}())
	fc := baseline.NewFragmentController(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fc.Flows(st)
	}
}

// --- Ablation 1: arranged (indexed) joins vs scan joins ---

const ablationKeyedJoin = `
input relation R(x: string, y: string)
input relation S(y: string, z: string)
output relation O(x: string, z: string)
O(x, z) :- R(x, y), S(y, z).
`

// The scan variant defeats key unification: y2 is bound by the scan and
// checked with a filter, so the planner cannot use an index.
const ablationScanJoin = `
input relation R(x: string, y: string)
input relation S(y: string, z: string)
output relation O(x: string, z: string)
O(x, z) :- R(x, y), S(y2, z), y2 == y.
`

func ablationJoinEngine(b *testing.B, src string, n int) *engine.Runtime {
	b.Helper()
	prog, err := dl.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := prog.NewRuntime(engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var load []engine.Update
	for i := 0; i < n; i++ {
		load = append(load,
			engine.Insert("S", value.Record{
				value.String(fmt.Sprintf("k%d", i)), value.String(fmt.Sprintf("z%d", i)),
			}))
	}
	if _, err := rt.Apply(load); err != nil {
		b.Fatal(err)
	}
	return rt
}

func BenchmarkAblationJoinIndexed(b *testing.B) {
	rt := ablationJoinEngine(b, ablationKeyedJoin, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := value.Record{value.String("x"), value.String(fmt.Sprintf("k%d", i%2000))}
		if _, err := rt.Apply([]engine.Update{engine.Insert("R", rec)}); err != nil {
			b.Fatal(err)
		}
		if _, err := rt.Apply([]engine.Update{engine.Delete("R", rec)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationJoinScan(b *testing.B) {
	rt := ablationJoinEngine(b, ablationScanJoin, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := value.Record{value.String("x"), value.String(fmt.Sprintf("k%d", i%2000))}
		if _, err := rt.Apply([]engine.Update{engine.Insert("R", rec)}); err != nil {
			b.Fatal(err)
		}
		if _, err := rt.Apply([]engine.Update{engine.Delete("R", rec)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation 2: incremental (semi-naive) insertion vs naive recompute ---

func BenchmarkAblationSemiNaiveInsert(b *testing.B) {
	rt, _ := benchTreeEngine(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := [2]string{"n1", fmt.Sprintf("x%d", i)}
		if _, err := rt.Apply([]engine.Update{workload.EdgeUpdate(
			workload.EdgeChange{Add: true, Edge: e})}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNaiveRecompute(b *testing.B) {
	g := workload.RandomTree(2000, 7)
	prog, err := dl.Compile(workload.ReachabilityRules)
	if err != nil {
		b.Fatal(err)
	}
	inputs := map[string][]value.Record{
		"GivenLabel": {{value.String("n0"), value.String("L")}},
	}
	for _, e := range g.Edges {
		inputs["Edge"] = append(inputs["Edge"],
			value.Record{value.String(e[0]), value.String(e[1])})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.NaiveEval(prog.Checked, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation 3: digest batching in the switch ---

func benchDigestStack(b *testing.B, batch int) (*bench.Stack, func(i int)) {
	b.Helper()
	s, err := bench.StartStack()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	// Rebuild the switch's digest config is not possible post-hoc; instead
	// drive learns through the existing stack and vary the controller-side
	// batching by sending bursts.
	if err := s.Transact(ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
		"name": "snvs0", "flood_unknown": true,
	})); err != nil {
		b.Fatal(err)
	}
	if err := s.Transact(ovsdb.OpInsert("Port", workload.AccessPortRow(0, 1))); err != nil {
		b.Fatal(err)
	}
	if err := s.WaitEntries("in_vlan", 1, 5*time.Second); err != nil {
		b.Fatal(err)
	}
	inject := func(i int) {
		e := packet.Ethernet{Dst: 0xffffffffffff, Src: packet.MAC(0x100000 + i), EtherType: 0x1234}
		if err := s.Switch.Inject(1, e.Append(nil)); err != nil {
			b.Fatal(err)
		}
	}
	_ = batch
	return s, inject
}

func BenchmarkAblationDigestLearn(b *testing.B) {
	s, inject := benchDigestStack(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inject(i)
		if err := s.WaitEntries("smac", i+1, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel evaluation scaling (Options.Workers) ---

// Four independent rules over the same join so every delta batch fans out
// into enough per-rule evaluation jobs to engage the worker pool (the
// engine stays sequential below its minimum-job threshold).
const parallelScalingSrc = `
input relation R(x: int, y: int)
input relation S(y: int, z: int)
output relation O0(x: int, z: int)
output relation O1(x: int, z: int)
output relation O2(x: int, z: int)
output relation O3(x: int, z: int)
O0(x, z) :- R(x, y), S(y, z), z < 2500.
O1(x, z) :- R(x, y), S(y, z), z >= 2500.
O2(x, z) :- R(x, y), S(y, z), z < 5000.
O3(x, z) :- R(x, y), S(y, z), z >= 5000.
`

// BenchmarkParallelEvalScaling measures steady-state batch updates at
// several worker counts. On a multi-core machine the 4- and 8-worker
// variants should approach the per-rule fan-out's available parallelism;
// with GOMAXPROCS=1 all variants collapse to the sequential path plus
// scheduling overhead, so compare variants, not absolute numbers.
func BenchmarkParallelEvalScaling(b *testing.B) {
	const base, batch, buckets = 4096, 64, 64
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			prog, err := dl.Compile(parallelScalingSrc)
			if err != nil {
				b.Fatal(err)
			}
			rt, err := prog.NewRuntime(engine.Options{Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			var load []engine.Update
			for i := 0; i < base; i++ {
				load = append(load,
					engine.Insert("R", value.Record{
						value.Int(int64(i)), value.Int(int64(i % buckets)),
					}),
					engine.Insert("S", value.Record{
						value.Int(int64(i % buckets)), value.Int(int64(i * 7919 % 10000)),
					}))
			}
			if _, err := rt.Apply(load); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ups := make([]engine.Update, 0, batch)
				for j := 0; j < batch; j++ {
					ups = append(ups, engine.Insert("R", value.Record{
						value.Int(int64(base + i)), value.Int(int64(j % buckets)),
					}))
				}
				if _, err := rt.Apply(ups); err != nil {
					b.Fatal(err)
				}
				for j := range ups {
					ups[j].Insert = false
				}
				if _, err := rt.Apply(ups); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
