#!/bin/sh
# Naming lint: every registered metric series must be named
# <plane>_<snake_case> and every flight-recorder event kind must be
# <noun>.<verb>, so dashboards, /debug/events filters, and the metrics
# history stay greppable and predictable. Test files are exempt (they
# register throwaway series on purpose).
set -eu
cd "$(dirname "$0")/.."

fail=0

# Metric names: the first string argument of Counter/Gauge/Histogram
# registrations and of history Track* calls outside tests.
metrics=$(grep -rhoE '\.(Counter|Gauge|Histogram|CounterFunc|GaugeFunc|TrackRate|TrackValue|TrackHistogramAvg|TrackAvg)\("[^"]+"' \
    --include='*.go' --exclude='*_test.go' cmd internal |
    sed -E 's/.*\("([^"]+)"$/\1/' | sort -u)
for m in $metrics; do
    if ! echo "$m" | grep -qE '^(ovsdb|dl|core|p4rt|switchsim|obs|fleet|bench|sub|jsonrpc)_[a-z0-9_]+$'; then
        echo "lint: metric/series name \"$m\" is not <plane>_<snake_case>" >&2
        fail=1
    fi
done

# Workload-profiler families: per-rule attribution series live under
# dl_rule_* and memory accounting under dl_mem_*, and their suffixes
# carry the semantics — cumulative per-rule counters end in _total,
# the EWMA gauge in _seconds, and memory gauges in their unit. Keeping
# the suffix conventions tight keeps the {rule=...} label cardinality
# confined to a predictable, greppable family.
for m in $metrics; do
    case "$m" in
    dl_rule_*)
        if ! echo "$m" | grep -qE '^dl_rule_[a-z0-9_]+_(total|seconds)$'; then
            echo "lint: profiler series \"$m\" must end in _total (counter) or _seconds (gauge)" >&2
            fail=1
        fi ;;
    dl_mem_*)
        if ! echo "$m" | grep -qE '^dl_mem_([a-z0-9_]+_)?(bytes|tuples|entries)$'; then
            echo "lint: memory series \"$m\" must end in its unit (bytes/tuples/entries)" >&2
            fail=1
        fi ;;
    esac
done

# The watchdog's canonical series constants are series names too.
series=$(grep -hoE '^\tSeries[A-Za-z]+ += +"[^"]+"' internal/obs/watchdog.go |
    sed -E 's/.*"([^"]+)"/\1/')
for s in $series; do
    if ! echo "$s" | grep -qE '^(ovsdb|dl|core|p4rt|switchsim|obs|fleet|bench|sub|jsonrpc)_[a-z0-9_]+$'; then
        echo "lint: watchdog series name \"$s\" is not <plane>_<snake_case>" >&2
        fail=1
    fi
done

# Event planes and kinds: every Ev("plane", "kind") emit site.
events=$(grep -rhoE '\bEv\("[^"]+", *"[^"]+"\)' \
    --include='*.go' --exclude='*_test.go' cmd internal |
    sed -E 's/.*Ev\("([^"]+)", *"([^"]+)"\)/\1:\2/' | sort -u)
for e in $events; do
    plane=${e%%:*}
    kind=${e#*:}
    if ! echo "$plane" | grep -qE '^(ovsdb|dl|core|p4rt|switchsim|sub)$'; then
        echo "lint: event plane \"$plane\" (kind $kind) is not a known plane" >&2
        fail=1
    fi
    if ! echo "$kind" | grep -qE '^[a-z_]+\.[a-z_]+$'; then
        echo "lint: event kind \"$kind\" (plane $plane) is not <noun>.<verb>" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "lint_names: ok ($(echo "$metrics" | wc -l) metric names, $(echo "$events" | wc -l) event kinds)"
