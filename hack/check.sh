#!/bin/sh
# Full local gate: format, build, vet, race-enabled tests, and a
# benchmark smoke pass across the module. The race detector is the
# authoritative check for the engine worker pool, the controller's
# concurrent device writes, and the obs hot path.
set -eux
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
sh hack/lint_names.sh
go build ./...
go vet ./...
go test -race ./...
# Smoke: every benchmark must still run (one iteration, no timing claims).
go test -run=NONE -bench=. -benchtime=1x ./...
# Provenance overhead smoke: the experiment must run end to end and emit
# its machine-readable report, and the collection-off hot path must stay
# allocation-free (the PR's overhead budget).
go run ./cmd/nerpa-bench -exp provenance -provenance-out BENCH_provenance.json
test -s BENCH_provenance.json
go test -run 'TestProvenanceOffZeroAlloc' -count=1 ./internal/dl/engine/
# Flight-recorder overhead: the experiment must emit its report, and the
# event hot path must stay allocation-free (the PR's <=5% p50 budget).
go run ./cmd/nerpa-bench -exp obs-overhead -obs-txns 200 -obs-overhead-out BENCH_obs_overhead.json
test -s BENCH_obs_overhead.json
go test -run 'TestEventHotPathZeroAlloc' -count=1 ./internal/obs/
# Resilience: the kill-and-restart e2e must reconverge under the race
# detector, and the reconnect experiment must emit its recovery report.
go test -race -run 'TestKillRestartEndToEnd' -count=1 .
go run ./cmd/nerpa-bench -exp reconnect -reconnect-ports 50,250 -reconnect-restarts 3 -reconnect-out BENCH_reconnect.json
test -s BENCH_reconnect.json
