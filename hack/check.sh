#!/bin/sh
# Full local gate: format, build, vet, race-enabled tests, and a
# benchmark smoke pass across the module. The race detector is the
# authoritative check for the engine worker pool, the controller's
# concurrent device writes, and the obs hot path.
set -eux
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go build ./...
go vet ./...
go test -race ./...
# Smoke: every benchmark must still run (one iteration, no timing claims).
go test -run=NONE -bench=. -benchtime=1x ./...
# Provenance overhead smoke: the experiment must run end to end and emit
# its machine-readable report, and the collection-off hot path must stay
# allocation-free (the PR's overhead budget).
go run ./cmd/nerpa-bench -exp provenance -provenance-out BENCH_provenance.json
test -s BENCH_provenance.json
go test -run 'TestProvenanceOffZeroAlloc' -count=1 ./internal/dl/engine/
