#!/bin/sh
# Full local gate: format, build, vet, race-enabled tests, and a
# benchmark smoke pass across the module. The race detector is the
# authoritative check for the engine worker pool, the controller's
# concurrent device writes, and the obs hot path.
set -eux
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
sh hack/lint_names.sh
go build ./...
go vet ./...
go test -race ./...
# Smoke: every benchmark must still run (one iteration, no timing claims).
go test -run=NONE -bench=. -benchtime=1x ./...
# Provenance overhead smoke: the experiment must run end to end and emit
# its machine-readable report, and the collection-off hot path must stay
# allocation-free (the PR's overhead budget).
go run ./cmd/nerpa-bench -exp provenance -provenance-out BENCH_provenance.json
test -s BENCH_provenance.json
go test -run 'TestProvenanceOffZeroAlloc' -count=1 ./internal/dl/engine/
# Workload profiler: with profiling off the per-rule attribution path
# must stay allocation-free (the always-on cost is zero).
go test -run 'TestRuleProfOffZeroAlloc' -count=1 ./internal/dl/engine/
# Flight-recorder overhead: the experiment must emit its report, the
# event hot path must stay allocation-free, and the p50 overhead vs the
# metrics baseline must stay inside the honest budget. Measured range
# across runs on this class of machine: events 4-10%, events+dataplane
# 7-14% (run-to-run noise is ~5pp), so the gates are 15% and 20% — wide
# enough not to flake, tight enough to catch a real hot-path regression.
go run ./cmd/nerpa-bench -exp obs-overhead -obs-txns 600 -obs-overhead-out BENCH_obs_overhead.json
test -s BENCH_obs_overhead.json
python3 - <<'PYEOF'
import json, sys
rows = {r["mode"]: r["p50_overhead_pct"] for r in json.load(open("BENCH_obs_overhead.json"))["rows"]}
budgets = {"events": 15.0, "events+dataplane": 20.0, "profiler": 20.0}
for mode, budget in budgets.items():
    pct = rows.get(mode)
    if pct is None:
        sys.exit(f"obs-overhead report is missing the {mode} row")
    print(f"obs overhead {mode}: {pct:.1f}% p50 (budget {budget:.0f}%)")
    if pct > budget:
        sys.exit(f"obs overhead regression: {mode} p50 is {pct:.1f}%, over the {budget:.0f}% budget")
PYEOF
go test -run 'TestEventHotPathZeroAlloc' -count=1 ./internal/obs/
# Fleet observability: the nerpa-top aggregator e2e (builds the real
# binaries, stitches a cross-process trace into the data plane, and
# verifies health flips on member death) must pass under the race
# detector.
go test -race -run 'TestFleetEndToEnd' -count=1 .
# Resilience: the kill-and-restart e2e must reconverge under the race
# detector, and the reconnect experiment must emit its recovery report.
go test -race -run 'TestKillRestartEndToEnd' -count=1 .
go run ./cmd/nerpa-bench -exp reconnect -reconnect-ports 50,250 -reconnect-restarts 3 -reconnect-out BENCH_reconnect.json
test -s BENCH_reconnect.json
# Sustained throughput: the experiment must emit its report, and the
# direct-mode aggregate txn/s must not regress more than 15% against the
# committed baseline (read before the run overwrites the file).
baseline=$(python3 -c "import json; print([r['txns_per_sec'] for r in json.load(open('BENCH_throughput.json'))['rows'] if r['mode'] == 'direct'][0])" 2>/dev/null || echo 0)
go run ./cmd/nerpa-bench -exp throughput -throughput-out BENCH_throughput.json
test -s BENCH_throughput.json
python3 - "$baseline" <<'PYEOF'
import json, sys
base = float(sys.argv[1])
cur = [r["txns_per_sec"] for r in json.load(open("BENCH_throughput.json"))["rows"] if r["mode"] == "direct"][0]
print(f"throughput direct: {cur:.0f} txn/s (baseline {base:.0f})")
if base > 0 and cur < base * 0.85:
    sys.exit(f"throughput regression: {cur:.0f} txn/s is >15% below baseline {base:.0f}")
PYEOF
# Pub/sub fan-out: the subscription service e2e (snapshot-then-delta
# ordering, slow-consumer eviction and resubscribe) and the jsonrpc
# bounded-write regressions run under the race detector.
go test -race -run 'TestSnapshotThenDelta|TestSlowConsumerEviction' -count=1 ./internal/subscribe/
go test -race -run 'TestWriteLimit|TestCloseFlushes' -count=1 ./internal/jsonrpc/
# Fan-out bench gate: 10k+ subscribers must all converge (cursor at the
# sentinel txn, state fingerprint equal to the reference snapshot), the
# stalled connection must be evicted and recover via resubscribe, and
# sustained delivery must not regress more than 25% against the
# committed baseline (read before the run overwrites the file).
fan_baseline=$(python3 -c "import json; print(json.load(open('BENCH_fanout.json'))['updates_per_sec'])" 2>/dev/null || echo 0)
go run ./cmd/nerpa-bench -exp fanout -fanout-out BENCH_fanout.json
test -s BENCH_fanout.json
python3 - "$fan_baseline" <<'PYEOF'
import json, sys
base = float(sys.argv[1])
r = json.load(open("BENCH_fanout.json"))
print(f"fanout: {r['subscribers']} subscribers, {r['updates_per_sec']:.0f} updates/s "
      f"(baseline {base:.0f}), converged {r['converged']}, evictions {r['evictions']:.0f}")
if r["subscribers"] < 10000:
    sys.exit(f"fanout ran {r['subscribers']} subscribers, below the 10k bar")
if r["converged"] != r["subscribers"]:
    sys.exit(f"fanout: only {r['converged']}/{r['subscribers']} subscribers converged")
if r["evictions"] < 1 or not r["evicted_recovered"]:
    sys.exit("fanout: slow-consumer eviction + resubscribe recovery not demonstrated")
if base > 0 and r["updates_per_sec"] < base * 0.75:
    sys.exit(f"fanout regression: {r['updates_per_sec']:.0f} updates/s is >25% below baseline {base:.0f}")
PYEOF
# Coalescing under race: merged monitor deliveries must stay
# data-race-free and preserve per-txn attribution.
go test -race -run 'TestCoalesc' -count=1 ./internal/core/
# Durability: the SIGKILL crash-recovery e2e must reconverge under the
# race detector, and the WAL append/recover paths get a dedicated -race
# smoke (group commit is the concurrency hot spot).
go test -race -run 'TestWALCrashRecoveryEndToEnd' -count=1 .
go test -race -run 'TestLog|TestWAL' -count=1 ./internal/ovsdb/wal/ ./internal/ovsdb/
# Recovery bench gate: the experiment must emit its report, gap replay
# must ship fewer rows than the full-snapshot fallback, and cold
# recovery must not regress more than 2.5x against the committed
# baseline (read before the run overwrites the file).
rec_baseline=$(python3 -c "import json; print(json.load(open('BENCH_recovery.json'))['cold_recovery_ns'])" 2>/dev/null || echo 0)
go run ./cmd/nerpa-bench -exp recovery -recovery-txns 2000 -recovery-out BENCH_recovery.json
test -s BENCH_recovery.json
python3 - "$rec_baseline" <<'PYEOF'
import json, sys
base = float(sys.argv[1])
r = json.load(open("BENCH_recovery.json"))
cold = float(r["cold_recovery_ns"])
print(f"cold recovery: {cold/1e6:.1f} ms for {r['txns']} txns (baseline {base/1e6:.1f} ms)")
if r["gap_rows_delivered"] >= r["full_snapshot_rows"]:
    sys.exit(f"gap replay shipped {r['gap_rows_delivered']} rows, not fewer than the {r['full_snapshot_rows']}-row snapshot")
if base > 0 and cold > base * 2.5:
    sys.exit(f"cold recovery regression: {cold/1e6:.1f} ms is >2.5x baseline {base/1e6:.1f} ms")
PYEOF
