package nerpa

import (
	"testing"

	"repro/internal/dl/engine"
	"repro/internal/dl/value"
	"repro/internal/p4"
	"repro/internal/snvs"
)

// TestFacade exercises the public entry points end to end: parse both
// plane artifacts, generate declarations, compile with rules, run the
// engine.
func TestFacade(t *testing.T) {
	schema, err := ParseSchema([]byte(snvs.SchemaJSON))
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	pipeline, err := ParseP4("snvs", snvs.PipelineSource)
	if err != nil {
		t.Fatalf("ParseP4: %v", err)
	}
	info, err := p4.BuildP4Info(pipeline)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Generate(schema, info)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	prog, err := gen.CompileWith(snvs.Rules)
	if err != nil {
		t.Fatalf("CompileWith: %v", err)
	}
	rt, err := NewRuntime(prog)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	_, err = rt.Apply([]engine.Update{engine.Insert("Port", value.Record{
		value.String("u1"), value.String("p1"), value.Int(1),
		value.Int(10), value.String("access"),
	})})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	recs, err := rt.Contents("InVlan")
	if err != nil || len(recs) != 1 {
		t.Fatalf("InVlan = %v, %v", recs, err)
	}
}

func TestFacadeCompileRules(t *testing.T) {
	prog, err := CompileRules(`
		input relation A(x: int)
		output relation B(x: int)
		B(x) :- A(x), x > 0.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Relation("B") == nil {
		t.Fatal("relation lookup failed")
	}
	if _, err := CompileRules(`nonsense`); err == nil {
		t.Fatal("bad program accepted")
	}
}
