package nerpa

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/ovsdb"
)

// TestWALCrashRecoveryEndToEnd SIGKILLs the OVSDB server process
// mid-workload and restarts it from its write-ahead log. A SIGKILL is
// the one failure drains and graceful shutdown cannot dress up: the
// process gets no chance to flush, so everything the restarted server
// knows must come from what fsync made durable. The test asserts
//
//   - exact reconvergence: after replay the Port table is byte-identical
//     to the committed state a monitoring controller had cached before
//     the crash (every acked transaction survived),
//   - gap-only resumption: the controller that rode through the crash
//     resynchronized via cursor gap replay, not a full snapshot, and the
//     rows it received after the kill are far fewer than the table, and
//   - monotonic transaction IDs: commits after restart carry IDs above
//     everything issued before the crash (the counter was reseeded from
//     the log, so event attribution never aliases across restarts).
func TestWALCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short")
	}
	bin := t.TempDir()
	out, err := exec.Command("go", "build", "-o", filepath.Join(bin, "ovsdb-server"), "./cmd/ovsdb-server").CombinedOutput()
	if err != nil {
		t.Fatalf("build ovsdb-server: %v\n%s", err, out)
	}

	walDir := t.TempDir()
	addr := freeAddr(t)
	start := func() *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, "ovsdb-server"),
			"-addr", addr, "-wal-dir", walDir, "-wal-fsync", "commit")
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start ovsdb-server: %v", err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	srv := start()
	waitDialable(t, addr)

	// The monitoring controller: a resilient client whose callback
	// maintains a mirror of the Port table and, once the crash flag is
	// up, counts every row it is sent. The mirror is what "committed
	// state before the crash" means below — it only ever advances on
	// server-acked commits.
	var mu sync.Mutex
	mirror := make(map[string]map[string]any)
	var crashed bool
	var postCrashRows int
	var maxTxn uint64
	cli, err := ovsdb.DialResilient(ovsdb.ResilientConfig{
		Addr:       addr,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.MonitorTxn("snvs", "crash-e2e", map[string]*ovsdb.MonitorRequest{
		"Port": {},
	}, func(txn uint64, tu ovsdb.TableUpdates) {
		mu.Lock()
		defer mu.Unlock()
		if txn > maxTxn {
			maxTxn = txn
		}
		for id, ru := range tu["Port"] {
			if ru.New != nil {
				mirror[id] = ru.New
			} else {
				delete(mirror, id)
			}
			if crashed {
				postCrashRows++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Writer workload: insert ports one commit at a time until the
	// server dies under it. Only acked commits count.
	wc, err := ovsdb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	const preCrashTarget = 40
	acked := 0
	for i := 0; ; i++ {
		_, terr := wc.TransactErr("snvs", ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name":      fmt.Sprintf("p%d", i),
			"port_num":  int64(i + 1),
			"vlan_mode": "access",
			"tag":       int64(10),
		}))
		if terr != nil {
			if acked < preCrashTarget {
				t.Fatalf("writer failed after only %d acked commits: %v", acked, terr)
			}
			break // the kill below landed mid-workload
		}
		acked++
		if acked == preCrashTarget {
			// Mid-workload SIGKILL: no drain, no flush, no goodbye.
			if err := srv.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatalf("kill: %v", err)
			}
		}
		if acked > preCrashTarget+1000 {
			t.Fatal("server never died after SIGKILL")
		}
	}
	srv.Wait()
	// Let the client read loop drain whatever the kernel flushed from the
	// dead server's socket before snapshotting; any notification that
	// died with the process is recovered via gap replay below.
	time.Sleep(200 * time.Millisecond)

	// Snapshot the controller's committed view. Update delivery is
	// asynchronous, so the mirror can trail the acks — but it only ever
	// holds server-committed state, which is the invariant that matters:
	// every row in it must survive recovery byte-for-byte.
	mu.Lock()
	crashed = true
	preCrashMirror := make(map[string]string, len(mirror))
	for id, row := range mirror {
		b, merr := json.Marshal(row)
		if merr != nil {
			mu.Unlock()
			t.Fatalf("marshal mirror row: %v", merr)
		}
		preCrashMirror[id] = string(b)
	}
	preCrashTxn := maxTxn
	mu.Unlock()
	if len(preCrashMirror) == 0 {
		t.Fatal("mirror empty before crash; monitor never delivered")
	}

	// Restart from the same WAL directory on the same address. The
	// resilient client must reconnect and resync on its own.
	start()
	waitDialable(t, addr)

	// Probe commit after restart: once the monitor callback sees it, the
	// resync (gap or otherwise) that preceded it has fully drained, and
	// its txn ID shows whether the counter survived the crash.
	wc2, err := ovsdb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc2.Close()
	if _, err := wc2.TransactErr("snvs", ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name":      "probe",
		"port_num":  int64(9999),
		"vlan_mode": "access",
		"tag":       int64(99),
	})); err != nil {
		t.Fatalf("post-restart probe commit: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		mu.Lock()
		seen := maxTxn > preCrashTxn
		mu.Unlock()
		if seen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("monitor never saw the post-restart probe commit")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Monotonic attribution: the probe's txn ID must sit above every
	// pre-crash commit — the restarted server reseeded its counter from
	// the log instead of starting over at 1.
	mu.Lock()
	probeTxn := maxTxn
	mu.Unlock()
	if probeTxn <= preCrashTxn || probeTxn < uint64(acked)+1 {
		t.Errorf("post-restart txn %d does not extend pre-crash sequence (saw %d, acked %d)", probeTxn, preCrashTxn, acked)
	}

	// Exact reconvergence: select the whole recovered table and compare
	// it row-for-row (canonical JSON) against the pre-crash mirror. The
	// probe row is the only admissible difference. Recovery may also
	// have kept a commit that was durable but whose ack raced the kill —
	// those rows must still be ones the writer actually attempted.
	res, err := wc2.TransactErr("snvs", ovsdb.OpSelect("Port"))
	if err != nil {
		t.Fatalf("post-restart select: %v", err)
	}
	recovered := make(map[string]string)
	for _, row := range res[0].Rows {
		ref, _ := row["_uuid"].([]any)
		if len(ref) != 2 {
			t.Fatalf("select row without _uuid: %v", row)
		}
		id, _ := ref[1].(string)
		if row["name"] == "probe" {
			continue
		}
		delete(row, "_uuid")
		b, merr := json.Marshal(row)
		if merr != nil {
			t.Fatalf("marshal recovered row: %v", merr)
		}
		recovered[id] = string(b)
	}
	for id, want := range preCrashMirror {
		got, ok := recovered[id]
		if !ok {
			t.Errorf("acked row %s lost across crash recovery", id)
			continue
		}
		if got != want {
			t.Errorf("row %s diverged across recovery:\n  pre-crash: %s\n  recovered: %s", id, want, got)
		}
	}
	for id, row := range recovered {
		if _, ok := preCrashMirror[id]; !ok {
			// A row the mirror never saw: either its notification died
			// with the process or its commit was durable but the ack
			// raced the kill. Both are legal, but it must look like one
			// of the writer's inserts.
			var m map[string]any
			if err := json.Unmarshal([]byte(row), &m); err != nil || m["vlan_mode"] != "access" {
				t.Errorf("recovered row %s is not one the workload wrote: %s", id, row)
			}
		}
	}
	// The writer was serial, so durable state is exactly the acked rows
	// plus at most the single commit in flight when the process died.
	if len(recovered) != acked && len(recovered) != acked+1 {
		t.Errorf("recovered table has %d rows; want %d acked (+1 in-flight at most)", len(recovered), acked)
	}

	// Gap-only resumption: the reconnect went through cursor replay, and
	// the rows shipped after the crash (resync deltas plus the probe) are
	// a small fraction of the table — not a full snapshot.
	gap, snap := cli.ResyncStats()
	if gap < 1 || snap != 0 {
		t.Errorf("resync stats: gap=%d snapshot=%d; want cursor gap replay only", gap, snap)
	}
	mu.Lock()
	delivered := postCrashRows
	mu.Unlock()
	if delivered >= len(recovered) {
		t.Errorf("post-crash deliveries (%d rows) not smaller than table (%d rows); resync was not gap-only", delivered, len(recovered))
	}
}
