package nerpa

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ovsdb"
	"repro/internal/p4rt"
	"repro/internal/snvs"
	"repro/internal/switchsim"
)

// TestKillRestartEndToEnd bounces both servers under a live controller:
// the OVSDB server and the switch are killed mid-workload, the database
// is mutated while the controller is disconnected, and both are then
// restarted (the switch with empty tables, as a rebooted device would
// be). The controller must reconnect on its own, resynchronize both
// planes, and converge the switch to the full desired state — including
// the change it never saw — while /readyz tracks degraded → ok.
func TestKillRestartEndToEnd(t *testing.T) {
	o := obs.NewObserver()
	obsSrv := httptest.NewServer(o.Handler())
	defer obsSrv.Close()

	schema, err := snvs.Schema()
	if err != nil {
		t.Fatal(err)
	}
	db := ovsdb.NewDatabase(schema)

	// Both servers on fixed ports so restarts land on the same address.
	ovsdbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ovsdbAddr := ovsdbLn.Addr().String()
	dbSrv := ovsdb.NewServer(db)
	go dbSrv.Serve(ovsdbLn)

	newSwitch := func() *switchsim.Switch {
		sw, err := switchsim.New("sw0", switchsim.Config{Program: snvs.Pipeline()})
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	swLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p4rtAddr := swLn.Addr().String()
	sw := newSwitch()
	go sw.Serve(swLn)

	rmp, err := ovsdb.DialResilient(ovsdb.ResilientConfig{
		Addr:       ovsdbAddr,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond,
		Obs:        o,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rmp.Close()
	rdp, err := p4rt.DialResilient(p4rt.ResilientConfig{
		Addr:       p4rtAddr,
		Target:     "dev0",
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond,
		Obs:        o,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rdp.Close()

	ctrl, err := core.New(core.Config{Rules: snvs.Rules, Database: "snvs", Obs: o}, rmp, rdp)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()
	rdp.OnReconnect(func(cl *p4rt.Client) error { return ctrl.Resync("dev0", cl) })

	transact := func(ops ...ovsdb.Operation) {
		t.Helper()
		for i, r := range db.Transact(ops) {
			if r.Error != "" {
				t.Fatalf("op %d: %s (%s)", i, r.Error, r.Details)
			}
		}
	}
	transact(
		ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{"name": "sw0", "flood_unknown": true}),
		ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
		}),
	)
	waitVlanPorts(t, p4rtAddr, 1)
	waitBody(t, obsSrv.URL+"/readyz", func(status int, _ string) bool { return status == 200 })

	// --- Outage: kill both servers, then change the network while the
	// controller cannot see or reach anything.
	dbSrv.Close()
	sw.Close()
	waitBody(t, obsSrv.URL+"/readyz", func(status int, body string) bool {
		return status == 503 && strings.Contains(body, "degraded")
	})
	transact(ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "p2", "port_num": int64(2), "vlan_mode": "access", "tag": int64(10),
	}))

	// --- Restart both servers on the same addresses. The switch comes
	// back empty: a reboot wiped its tables.
	relisten := func(addr string) net.Listener {
		deadline := time.Now().Add(5 * time.Second)
		for {
			ln, err := net.Listen("tcp", addr)
			if err == nil {
				return ln
			}
			if time.Now().After(deadline) {
				t.Fatalf("rebinding %s: %v", addr, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	dbSrv2 := ovsdb.NewServer(db)
	defer dbSrv2.Close()
	go dbSrv2.Serve(relisten(ovsdbAddr))
	sw2 := newSwitch()
	defer sw2.Close()
	go sw2.Serve(relisten(p4rtAddr))

	// Convergence: the switch holds entries for BOTH ports — p1 from the
	// resync replay, p2 from the OVSDB snapshot diff — and /readyz is ok.
	waitVlanPorts(t, p4rtAddr, 2)
	waitBody(t, obsSrv.URL+"/readyz", func(status int, _ string) bool { return status == 200 })

	// The diff is now empty: desired state and device agree exactly.
	if err := ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}
	cl, err := p4rt.Dial(p4rtAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	entries, err := cl.ReadTable("in_vlan")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("in_vlan has %d entries after recovery, want 2: %v", len(entries), entries)
	}

	// Every plane counted its recovery.
	waitBody(t, obsSrv.URL+"/metrics", func(_ int, body string) bool {
		return hasCounterAtLeast(body, "ovsdb_reconnects_total", 1) &&
			hasCounterAtLeast(body, `p4rt_reconnects_total{target="dev0"}`, 1) &&
			hasCounterAtLeast(body, "core_resyncs_total", 1)
	})
}

// waitVlanPorts polls the switch's control API until in_vlan holds n
// entries (dialing fresh each attempt: the server may be down).
func waitVlanPorts(t *testing.T, addr string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if c, err := p4rt.Dial(addr); err == nil {
			entries, err := c.ReadTable("in_vlan")
			c.Close()
			if err == nil && len(entries) == n {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("in_vlan never reached %d entries", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitBody polls the URL until ok accepts the response.
func waitBody(t *testing.T, url string, ok func(status int, body string) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var body string
		var status int
		if resp, err := http.Get(url); err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			body, status = string(b), resp.StatusCode
		}
		if ok(status, body) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never matched; last status %d body:\n%s", url, status, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// hasCounterAtLeast reports whether the Prometheus dump has the series
// with a value >= want (integer-rendered counters).
func hasCounterAtLeast(body, series string, want int) bool {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscan(strings.TrimPrefix(line, series+" "), &v); err == nil && int(v) >= want {
			return true
		}
	}
	return false
}
