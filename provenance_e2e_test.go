package nerpa

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/ovsdb"
)

// explainNode mirrors the /debug/explain tree JSON.
type explainNode struct {
	Relation     string         `json:"relation"`
	Record       string         `json:"record"`
	Kind         string         `json:"kind"`
	Rule         string         `json:"rule,omitempty"`
	TxnID        uint64         `json:"txn_id,omitempty"`
	Alternatives int            `json:"alternatives,omitempty"`
	Children     []*explainNode `json:"children,omitempty"`
}

type explainResult struct {
	Relation string `json:"relation"`
	Key      string `json:"key,omitempty"`
	Entry    *struct {
		Table    string `json:"table"`
		Matches  string `json:"matches"`
		Action   string `json:"action"`
		Relation string `json:"relation"`
		Record   string `json:"record"`
		TxnID    uint64 `json:"txn_id"`
		Source   string `json:"source"`
	} `json:"entry,omitempty"`
	Tree *explainNode `json:"tree"`
}

// collectLeaves gathers a tree's leaf nodes.
func collectLeaves(n *explainNode, out *[]*explainNode) {
	if len(n.Children) == 0 {
		*out = append(*out, n)
		return
	}
	for _, ch := range n.Children {
		collectLeaves(ch, out)
	}
}

// TestProvenanceExplainE2E is the paper's provenance walk end to end: an
// OVSDB row is inserted, the controller derives and pushes a P4 table
// entry, and /debug/explain on that entry returns a derivation tree
// whose leaves are exactly the inserted management-plane row, annotated
// with the transaction that committed it.
func TestProvenanceExplainE2E(t *testing.T) {
	o, s := startObservedStack(t)
	txn := s.DB.LastTxnID()
	if txn == 0 {
		t.Fatal("no transaction committed")
	}

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Health endpoints: the controller signaled readiness after its
	// initial sync, well before WaitEntries converged.
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 200 {
		t.Fatalf("/readyz = %d %q, want 200 after initial sync", code, body)
	}

	// The trace filter resolves the committing transaction.
	if code, body := get(fmt.Sprintf("/debug/traces?txn=%d", txn)); code != 200 ||
		!strings.Contains(body, `"name": "push"`) {
		t.Fatalf("/debug/traces?txn=%d = %d: %s", txn, code, body)
	}

	// Explain the pushed table entry. The in_vlan table holds exactly one
	// entry, so no key is needed.
	code, body := get("/debug/explain?relation=in_vlan")
	if code != 200 {
		t.Fatalf("/debug/explain?relation=in_vlan = %d: %s", code, body)
	}
	var res explainResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("decoding explain response: %v\n%s", err, body)
	}
	if res.Entry == nil {
		t.Fatalf("explain response has no entry envelope: %s", body)
	}
	if res.Entry.Table != "in_vlan" || res.Entry.Relation != "InVlan" {
		t.Fatalf("entry = %+v, want table in_vlan from relation InVlan", res.Entry)
	}
	if res.Entry.TxnID != txn || res.Entry.Source != "ovsdb" {
		t.Fatalf("entry pushed by txn %d (%s), want %d (ovsdb)", res.Entry.TxnID, res.Entry.Source, txn)
	}
	if res.Tree == nil {
		t.Fatalf("explain response has no tree: %s", body)
	}
	if res.Tree.Relation != "InVlan" || res.Tree.Kind != "derived" {
		t.Fatalf("tree root = %+v, want derived InVlan fact", res.Tree)
	}
	if !strings.Contains(res.Tree.Rule, "InVlan") || !strings.Contains(res.Tree.Rule, "Port") {
		t.Fatalf("root rule = %q, want the InVlan :- Port rule", res.Tree.Rule)
	}

	// The leaves are exactly the inserted OVSDB row: one Port input fact,
	// carrying the committing transaction's ID.
	var leaves []*explainNode
	collectLeaves(res.Tree, &leaves)
	if len(leaves) != 1 {
		t.Fatalf("derivation tree has %d leaves, want exactly 1 (the Port row): %s", len(leaves), body)
	}
	leaf := leaves[0]
	if leaf.Relation != "Port" || leaf.Kind != "input" {
		t.Fatalf("leaf = %+v, want Port input fact", leaf)
	}
	if !strings.Contains(leaf.Record, `"p1"`) {
		t.Fatalf("leaf record = %q, want the inserted row p1", leaf.Record)
	}
	if leaf.TxnID != txn {
		t.Fatalf("leaf txn_id = %d, want committing txn %d", leaf.TxnID, txn)
	}

	// The same fact is explainable by relation+record directly.
	code, body = get("/debug/explain?relation=InVlan&key=" + url.QueryEscape(res.Tree.Record))
	if code != 200 {
		t.Fatalf("explain by relation = %d: %s", code, body)
	}

	// And the input row itself resolves to a single annotated leaf.
	code, body = get("/debug/explain?relation=Port&key=" + url.QueryEscape(leaf.Record))
	if code != 200 {
		t.Fatalf("explain input = %d: %s", code, body)
	}
	var inputRes explainResult
	if err := json.Unmarshal([]byte(body), &inputRes); err != nil {
		t.Fatal(err)
	}
	if inputRes.Tree.Kind != "input" || inputRes.Tree.TxnID != txn {
		t.Fatalf("input explain tree = %+v, want input leaf with txn %d", inputRes.Tree, txn)
	}

	// Unknown subjects 404.
	if code, _ := get("/debug/explain?relation=in_vlan&key=nosuch"); code != http.StatusNotFound {
		t.Fatalf("unknown key = %d, want 404", code)
	}
	if code, _ := get("/debug/explain?relation=NoSuchRel"); code != http.StatusNotFound {
		t.Fatalf("unknown relation = %d, want 404", code)
	}

	// obs_provenance_* gauges are exposed and non-zero.
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "obs_provenance_facts") ||
		!strings.Contains(body, "obs_provenance_entries") {
		t.Fatalf("/metrics missing obs_provenance_* gauges (code %d)", code)
	}
}

// TestProvenanceRetractionE2E retracts the management-plane row and
// checks the entry's provenance disappears with it.
func TestProvenanceRetractionE2E(t *testing.T) {
	o, s := startObservedStack(t)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	if err := s.Transact(ovsdb.OpDelete("Port", ovsdb.Cond("name", "==", "p1"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Ctrl.Barrier(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/debug/explain?relation=in_vlan")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("explain after retraction = %d, want 404: %s", resp.StatusCode, body)
	}
}
