package nerpa

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ovsdb"
)

// TestFleetEndToEnd builds all four binaries, runs the three planes as
// separate processes with nerpa-top polling their obs endpoints, and
// checks the aggregator's acceptance surface: a stitched cross-process
// timeline ending in switch-applied, nonzero fleet convergence
// percentiles on /fleet/metrics, and stale-member detection within one
// poll interval of killing a process.
func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns binaries")
	}
	bin := t.TempDir()
	for _, cmd := range []string{"ovsdb-server", "snvs-switch", "nerpa-controller", "nerpa-top"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", cmd, err, out)
		}
	}
	ovsdbAddr := freeAddr(t)
	p4rtAddr := freeAddr(t)
	ovsdbObs := freeAddr(t)
	switchObs := freeAddr(t)
	ctrlObs := freeAddr(t)
	topAddr := freeAddr(t)

	start := func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	start("ovsdb-server", "-addr", ovsdbAddr, "-obs-addr", ovsdbObs, "-obs-instance", "db0")
	swCmd := start("snvs-switch", "-p4rt", p4rtAddr, "-obs-addr", switchObs, "-obs-instance", "sw0")
	waitDialable(t, ovsdbAddr)
	waitDialable(t, p4rtAddr)
	start("nerpa-controller", "-ovsdb", ovsdbAddr, "-p4rt", p4rtAddr, "-db", "snvs",
		"-obs-addr", ctrlObs, "-obs-instance", "ctl0")
	const pollInterval = 300 * time.Millisecond
	targets := fmt.Sprintf("db0=%s,ctl0=%s,sw0=%s", ovsdbObs, ctrlObs, switchObs)
	start("nerpa-top", "-targets", targets, "-addr", topAddr, "-interval", pollInterval.String())
	waitDialable(t, topAddr)

	// Configure through the management plane.
	dbc, err := ovsdb.Dial(ovsdbAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer dbc.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, err = dbc.TransactErr("snvs",
			ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
				"name": "snvs0", "flood_unknown": true,
			}),
			ovsdb.OpInsert("Port", map[string]ovsdb.Value{
				"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
			}),
		)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("transact never succeeded: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The aggregator stitches the per-process trace fragments into one
	// cross-process timeline ending at the data plane.
	type stitched struct {
		TxnID    uint64   `json:"txn_id"`
		Complete bool     `json:"complete"`
		Missing  []string `json:"missing"`
		Members  []string `json:"members"`
		Stages   []struct {
			Name   string `json:"name"`
			Member string `json:"member"`
			Plane  string `json:"plane"`
		} `json:"stages"`
		ConvergenceNs int64 `json:"convergence_ns"`
	}
	var full stitched
	for {
		var dump struct {
			Traces []stitched `json:"traces"`
		}
		body := fetchURL(t, "http://"+topAddr+"/fleet/traces", deadline)
		if err := json.Unmarshal([]byte(body), &dump); err != nil {
			t.Fatalf("/fleet/traces is not JSON: %v\n%s", err, body)
		}
		done := false
		for _, tr := range dump.Traces {
			if tr.Complete {
				full, done = tr, true
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no complete stitched trace appeared: %+v", dump)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The single-txn form returns the same timeline, ending in the
	// data-plane apply, attributed across all three processes.
	var tr stitched
	body := fetchURL(t, fmt.Sprintf("http://%s/fleet/traces?txn=%d", topAddr, full.TxnID), deadline)
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/fleet/traces?txn= is not JSON: %v\n%s", err, body)
	}
	if !tr.Complete || len(tr.Stages) < 5 {
		t.Fatalf("stitched trace incomplete: %s", body)
	}
	if got := tr.Stages[len(tr.Stages)-1]; got.Name != "switch-applied" || got.Member != "sw0" {
		t.Fatalf("timeline does not end in switch-applied@sw0: %s", body)
	}
	if strings.Join(tr.Members, ",") != "ctl0,db0,sw0" {
		t.Fatalf("members = %v, want all three processes", tr.Members)
	}
	if tr.ConvergenceNs <= 0 {
		t.Fatalf("convergence_ns = %d, want > 0", tr.ConvergenceNs)
	}

	// Fleet metrics export nonzero convergence percentiles.
	metrics := fetchURL(t, "http://"+topAddr+"/fleet/metrics", deadline)
	for _, series := range []string{
		`fleet_members 3`,
		`fleet_member_up{member="db0"} 1`,
		`fleet_member_up{member="ctl0"} 1`,
		`fleet_member_up{member="sw0"} 1`,
	} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("/fleet/metrics missing %q:\n%s", series, metrics)
		}
	}
	for _, q := range []string{"0.5", "0.9", "0.99"} {
		prefix := fmt.Sprintf(`fleet_convergence_seconds{quantile="%s"} `, q)
		found := false
		for _, line := range strings.Split(metrics, "\n") {
			if v, ok := strings.CutPrefix(line, prefix); ok {
				found = true
				if strings.TrimSpace(v) == "0" {
					t.Fatalf("p%s convergence is zero:\n%s", q, metrics)
				}
			}
		}
		if !found {
			t.Fatalf("/fleet/metrics missing quantile %s:\n%s", q, metrics)
		}
	}

	// One-shot mode prints the member table on stdout, plus the
	// fleet-wide hot-rule table scraped from the controller's profiler
	// (-obs-profile defaults on): rule IDs ranked by EWMA cost with the
	// hottest member attributed.
	out, err := exec.Command(filepath.Join(bin, "nerpa-top"), "-targets", targets, "-once").CombinedOutput()
	if err != nil {
		t.Fatalf("nerpa-top -once: %v\n%s", err, out)
	}
	for _, wantStr := range []string{
		"db0", "ctl0", "sw0", "up", "convergence",
		"hot rules", "InVlan#0", "TOP MEMBER",
	} {
		if !strings.Contains(string(out), wantStr) {
			t.Fatalf("nerpa-top -once output missing %q:\n%s", wantStr, out)
		}
	}

	// Kill the switch: its member flips from up within ~one poll.
	swCmd.Process.Kill()
	swCmd.Wait()
	flipDeadline := time.Now().Add(10 * pollInterval)
	for {
		var status struct {
			Members []struct {
				Name   string `json:"name"`
				Health string `json:"health"`
			} `json:"members"`
		}
		body := fetchURL(t, "http://"+topAddr+"/fleet", flipDeadline)
		if err := json.Unmarshal([]byte(body), &status); err != nil {
			t.Fatalf("/fleet is not JSON: %v\n%s", err, body)
		}
		stale := false
		for _, m := range status.Members {
			if m.Name == "sw0" && m.Health == "stale" {
				stale = true
			}
		}
		if stale {
			break
		}
		if time.Now().After(flipDeadline) {
			t.Fatalf("sw0 never went stale after kill: %s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if resp, err := http.Get("http://" + topAddr + "/fleet/metrics"); err == nil {
		defer resp.Body.Close()
		buf := new(strings.Builder)
		b := make([]byte, 64<<10)
		for {
			n, rerr := resp.Body.Read(b)
			buf.Write(b[:n])
			if rerr != nil {
				break
			}
		}
		if !strings.Contains(buf.String(), `fleet_member_up{member="sw0"} 0`) {
			t.Fatalf("metrics still report sw0 up after kill:\n%s", buf.String())
		}
	}
}
