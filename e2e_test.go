package nerpa

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ovsdb"
	"repro/internal/p4rt"
)

// TestProcessLevelEndToEnd builds the three plane binaries, runs them as
// separate OS processes, configures the network through the
// management-plane process, and observes the entries landing in the
// data-plane process — the deployment shape of Fig. 2/4.
func TestProcessLevelEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns binaries")
	}
	bin := t.TempDir()
	for _, cmd := range []string{"ovsdb-server", "snvs-switch", "nerpa-controller"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", cmd, err, out)
		}
	}
	ovsdbAddr := freeAddr(t)
	p4rtAddr := freeAddr(t)
	ovsdbObs := freeAddr(t)
	switchObs := freeAddr(t)
	ctrlObs := freeAddr(t)

	start := func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	start("ovsdb-server", "-addr", ovsdbAddr, "-obs-addr", ovsdbObs)
	start("snvs-switch", "-p4rt", p4rtAddr, "-obs-addr", switchObs)
	waitDialable(t, ovsdbAddr)
	waitDialable(t, p4rtAddr)
	start("nerpa-controller", "-ovsdb", ovsdbAddr, "-p4rt", p4rtAddr, "-db", "snvs",
		"-obs-addr", ctrlObs)

	// Configure through the management plane.
	dbc, err := ovsdb.Dial(ovsdbAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer dbc.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err = dbc.TransactErr("snvs",
			ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
				"name": "snvs0", "flood_unknown": true,
			}),
			ovsdb.OpInsert("Port", map[string]ovsdb.Value{
				"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
			}),
		)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("transact never succeeded: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Observe the derived entries through the data plane's control API.
	p4c, err := p4rt.Dial(p4rtAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer p4c.Close()
	for {
		entries, err := p4c.ReadTable("in_vlan")
		if err == nil && len(entries) == 1 &&
			entries[0].Action == "set_vlan" && entries[0].Params[0] == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in_vlan never converged: %v, %v", entries, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Each process serves its own plane's metrics on -obs-addr.
	for addr, series := range map[string]string{
		ovsdbObs:  "ovsdb_txn_total",
		switchObs: "switchsim_writes_total",
		ctrlObs:   "p4rt_writes_total",
	} {
		body := fetchMetrics(t, addr, deadline)
		if !strings.Contains(body, "# TYPE "+series+" counter") {
			t.Fatalf("http://%s/metrics missing %s:\n%s", addr, series, body)
		}
	}

	// The management plane's tracer saw the transaction.
	body := fetchURL(t, "http://"+ovsdbObs+"/debug/traces", deadline)
	var dump struct {
		Traces []struct {
			Stages []struct {
				Name string `json:"name"`
			} `json:"stages"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/traces is not JSON: %v\n%s", err, body)
	}
	if len(dump.Traces) == 0 || len(dump.Traces[0].Stages) == 0 {
		t.Fatalf("/debug/traces empty: %s", body)
	}
}

func fetchMetrics(t *testing.T, addr string, deadline time.Time) string {
	t.Helper()
	return fetchURL(t, "http://"+addr+"/metrics", deadline)
}

func fetchURL(t *testing.T, url string, deadline time.Time) string {
	t.Helper()
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				return string(body)
			}
			err = fmt.Errorf("GET %s: status %s, read err %v", url, resp.Status, rerr)
		}
		if time.Now().After(deadline) {
			t.Fatalf("fetching %s: %v", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitDialable(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never came up", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
