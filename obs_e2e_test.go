package nerpa

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/ovsdb"
	"repro/internal/snvs"
)

// startObservedStack boots the in-process snvs stack with every plane
// sharing one observer, and applies a single configuration transaction.
func startObservedStack(t *testing.T) (*obs.Observer, *bench.Stack) {
	t.Helper()
	o := obs.NewObserver()
	s, err := bench.StartStackObs(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if err := s.Transact(
		ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
			"name": "snvs0", "flood_unknown": true,
		}),
		ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
		}),
	); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitEntries("in_vlan", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return o, s
}

// stageNames returns a trace's stage names in timeline (start-time) order.
func stageNames(tr obs.Trace) []string {
	names := make([]string, len(tr.Stages))
	for i, st := range tr.Stages {
		names[i] = st.Name
	}
	return names
}

// TestObsTraceTimeline asserts that one OVSDB transaction produces exactly
// one trace carrying the complete commit→monitor→delta→push→switch-applied
// timeline with monotonic stage timestamps.
func TestObsTraceTimeline(t *testing.T) {
	o, s := startObservedStack(t)

	txn := s.DB.LastTxnID()
	if txn == 0 {
		t.Fatal("no transaction committed")
	}

	// The push stage is recorded just after the device write completes, so
	// it can trail the WaitEntries convergence by a beat.
	var tr obs.Trace
	deadline := time.Now().Add(5 * time.Second)
	for {
		var ok bool
		tr, ok = o.Tr().Get(txn)
		if ok && len(tr.Stages) >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace for txn %d never completed: %+v", txn, tr)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if got := o.Tr().Recent(0); len(got) != 1 {
		t.Fatalf("tracer holds %d traces, want exactly 1: %+v", len(got), got)
	}
	if tr.Source != "ovsdb" {
		t.Fatalf("trace source = %q, want ovsdb", tr.Source)
	}

	want := map[string]bool{
		"commit": true, "monitor": true, "delta": true, "push": true,
		"switch-applied": true,
	}
	byName := map[string]obs.Stage{}
	for _, st := range tr.Stages {
		byName[st.Name] = st
	}
	for name := range want {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace missing stage %q: have %v", name, stageNames(tr))
		}
	}

	// Per-stage sanity: each stage spans a non-negative interval.
	for _, st := range tr.Stages {
		if st.End.Before(st.Start) {
			t.Fatalf("stage %s ends before it starts: %+v", st.Name, st)
		}
	}
	// Pipeline order: commit precedes monitor delivery precedes delta
	// evaluation precedes the push, within which the device applies.
	order := []string{"commit", "monitor", "delta", "push", "switch-applied"}
	for i := 1; i < len(order); i++ {
		prev, cur := byName[order[i-1]], byName[order[i]]
		if cur.Start.Before(prev.Start) {
			t.Fatalf("stage %s starts before %s: %v < %v",
				cur.Name, prev.Name, cur.Start, prev.Start)
		}
		if cur.End.Before(prev.Start) {
			t.Fatalf("stage %s ends before %s starts", cur.Name, prev.Name)
		}
	}
	if push := byName["push"]; push.Attrs["updates"] < 1 {
		t.Fatalf("push stage pushed no updates: %+v", push)
	}
}

// TestObsEndpointsServeAllPlanes drives the stack, then checks the HTTP
// surface: /metrics exposes series from every plane and /debug/traces
// returns the completed timeline.
func TestObsEndpointsServeAllPlanes(t *testing.T) {
	o, s := startObservedStack(t)
	txn := s.DB.LastTxnID()

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, series := range []string{
		// management plane
		"ovsdb_txn_total 1",
		"ovsdb_monitor_updates_total",
		// control plane
		"core_txn_total{source=\"ovsdb\"}",
		"dl_eval_seconds_count",
		"dl_delta_size_sum",
		// data plane (client and device sides)
		"p4rt_writes_total",
		"switchsim_writes_total",
	} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("/metrics missing %q:\n%s", series, metrics)
		}
	}

	// The push trails table convergence; poll until the dump is complete.
	var dump struct {
		Evicted uint64      `json:"evicted"`
		Traces  []obs.Trace `json:"traces"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := json.Unmarshal([]byte(get("/debug/traces")), &dump); err != nil {
			t.Fatalf("/debug/traces is not JSON: %v", err)
		}
		if len(dump.Traces) == 1 && len(dump.Traces[0].Stages) >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/debug/traces never showed the full timeline: %+v", dump)
		}
		time.Sleep(10 * time.Millisecond)
	}
	tr := dump.Traces[0]
	if tr.TxnID != txn {
		t.Fatalf("trace txn = %d, want %d", tr.TxnID, txn)
	}
	// WriteJSON sorts stages by start time; the timeline must read in
	// pipeline order.
	names := stageNames(tr)
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	last := -1
	for _, n := range []string{"commit", "monitor", "delta", "push", "switch-applied"} {
		i, ok := idx[n]
		if !ok {
			t.Fatalf("timeline missing %q: %v", n, names)
		}
		if i < last {
			t.Fatalf("timeline out of order: %v", names)
		}
		last = i
	}

	// With switch-applied in the trace, the end-to-end convergence
	// histogram must have observed the commit→apply latency.
	if metrics := get("/metrics"); !strings.Contains(metrics, "obs_convergence_seconds_count 1") {
		t.Fatalf("/metrics missing obs_convergence_seconds_count 1 after full timeline:\n%s", metrics)
	}
}

// profilerRules extends the snvs program with a deliberately expensive
// rule: every ordered pair of ports sharing a VLAN, quadratic in ports
// per VLAN. The relation is bound to no data-plane table, so it stays
// internal — pure engine load for the profiler to attribute.
const profilerRules = snvs.Rules + `
relation PortPair(a: bit<16>, b: bit<16>)
PortPair(a, b) :- InVlan(a, v), InVlan(b, v).
`

// TestProfilerRanksExpensiveRule is the workload-profiler e2e: a port
// churn workload whose cost is dominated by the quadratic PortPair rule
// must surface that rule first on /debug/rules, expose its dl_rule_*
// series on /metrics, and account its tuples on /debug/memory.
func TestProfilerRanksExpensiveRule(t *testing.T) {
	o := obs.NewObserver()
	s, err := bench.StartStackConfig(bench.StackConfig{
		Obs: o, Profile: true, Rules: profilerRules,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Transact(ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
		"name": "snvs0", "flood_unknown": true,
	})); err != nil {
		t.Fatal(err)
	}
	const ports = 48
	for i := 0; i < ports; i++ {
		if err := s.Transact(ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p" + strconv.Itoa(i), "port_num": int64(i + 1),
			"vlan_mode": "access", "tag": int64(10),
		})); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WaitEntries("in_vlan", ports, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	var rep obs.RuleReport
	if err := json.Unmarshal([]byte(get("/debug/rules")), &rep); err != nil {
		t.Fatalf("/debug/rules is not JSON: %v", err)
	}
	if rep.Txns == 0 || len(rep.Rules) == 0 {
		t.Fatalf("profiler observed nothing: %+v", rep)
	}
	top := rep.Rules[0]
	if top.ID != "PortPair#0" {
		t.Fatalf("hottest rule = %s (%.0fns EWMA), want PortPair#0: %+v",
			top.ID, top.EwmaNs, rep.Rules)
	}
	// Quadratic growth: 48 single-port inserts into one VLAN derive
	// sum(2k-1) = 48² pairs.
	if top.Derivations != ports*ports {
		t.Fatalf("PortPair derivations = %d, want %d", top.Derivations, ports*ports)
	}
	if top.Share <= 0 || top.EwmaNs <= 0 || top.Label == "" {
		t.Fatalf("top row incomplete: %+v", top)
	}

	metrics := get("/metrics")
	for _, series := range []string{
		`dl_rule_eval_ns_total{rule="PortPair#0"}`,
		`dl_rule_derivations_total{rule="PortPair#0"} 2304`,
		`dl_rule_cost_ewma_seconds{rule="PortPair#0"}`,
		"dl_mem_bytes",
		"dl_mem_tuples",
	} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("/metrics missing %q", series)
		}
	}

	// Memory accounting: the snapshot republishes on every transaction,
	// so after the last insert PortPair already shows the quadratic
	// tuple set.
	var mem struct {
		At time.Time `json:"at"`
		obs.MemSnapshot
	}
	if err := json.Unmarshal([]byte(get("/debug/memory")), &mem); err != nil {
		t.Fatalf("/debug/memory is not JSON: %v", err)
	}
	if mem.At.IsZero() || mem.Bytes == 0 {
		t.Fatalf("memory snapshot never published: %+v", mem)
	}
	var pp *obs.RelMem
	for i := range mem.Relations {
		if mem.Relations[i].Name == "PortPair" {
			pp = &mem.Relations[i]
		}
	}
	if pp == nil || pp.Tuples != ports*ports || pp.Bytes == 0 {
		t.Fatalf("PortPair memory accounting wrong: %+v", pp)
	}
}
