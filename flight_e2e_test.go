package nerpa

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/ovsdb"
	"repro/internal/p4rt"
)

// TestFlightRecorderSlowPushIncident is the flight recorder's acceptance
// test: with a switchsim fault hook making device writes artificially
// slow and a tight push budget, inserting a Port row must pin the
// transaction into /debug/incidents carrying its commit→push event
// timeline, and /debug/history must show a nonzero push-latency sample.
func TestFlightRecorderSlowPushIncident(t *testing.T) {
	o := obs.NewObserver()
	s, err := bench.StartStackObs(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	o.StartHistory(10 * time.Millisecond)
	t.Cleanup(o.StopHistory)

	// Converge the baseline configuration at full speed first, so only
	// the probe transaction below trips the budget.
	if err := s.Transact(
		ovsdb.OpInsert("SwitchCfg", map[string]ovsdb.Value{
			"name": "snvs0", "flood_unknown": true,
		}),
		ovsdb.OpInsert("Port", map[string]ovsdb.Value{
			"name": "p1", "port_num": int64(1), "vlan_mode": "access", "tag": int64(10),
		}),
	); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitEntries("in_vlan", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Slow device: every write now stalls 25ms before applying (the hook
	// returns nil, so the write itself still succeeds).
	const stall = 25 * time.Millisecond
	s.Switch.SetWriteFault(func([]p4rt.Update) error {
		time.Sleep(stall)
		return nil
	})
	o.SetSlowBudget(obs.Budgets{Push: 5 * time.Millisecond})

	if err := s.Transact(ovsdb.OpInsert("Port", map[string]ovsdb.Value{
		"name": "p2", "port_num": int64(2), "vlan_mode": "access", "tag": int64(10),
	})); err != nil {
		t.Fatal(err)
	}
	txn := s.DB.LastTxnID()
	if err := s.WaitEntries("in_vlan", 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s\n%s", path, resp.Status, body)
		}
		return string(body)
	}

	// The incident is pinned after the push completes; poll briefly.
	var dump struct {
		Incidents []obs.Incident `json:"incidents"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := json.Unmarshal([]byte(get("/debug/incidents")), &dump); err != nil {
			t.Fatalf("/debug/incidents is not JSON: %v", err)
		}
		if len(dump.Incidents) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/debug/incidents never showed the slow transaction")
		}
		time.Sleep(10 * time.Millisecond)
	}

	var inc *obs.Incident
	for i := range dump.Incidents {
		if dump.Incidents[i].Txn == txn && dump.Incidents[i].Stage == "push" {
			inc = &dump.Incidents[i]
			break
		}
	}
	if inc == nil {
		t.Fatalf("no push incident for txn %d: %+v", txn, dump.Incidents)
	}
	if inc.Source != "ovsdb" {
		t.Fatalf("incident source = %q, want ovsdb", inc.Source)
	}
	if inc.Actual < stall || inc.Budget != 5*time.Millisecond {
		t.Fatalf("incident actual=%v budget=%v, want >= %v over 5ms", inc.Actual, inc.Budget, stall)
	}

	// The pinned events must tell the commit→push story in order.
	seq := map[string]uint64{}
	for _, ev := range inc.Events {
		if _, dup := seq[ev.Kind]; !dup {
			seq[ev.Kind] = ev.Seq
		}
	}
	for _, kind := range []string{"txn.commit", "monitor.deliver", "push.start", "device.write", "push.barrier"} {
		if _, ok := seq[kind]; !ok {
			t.Fatalf("incident timeline missing %q: %+v", kind, inc.Events)
		}
	}
	if !(seq["txn.commit"] < seq["monitor.deliver"] &&
		seq["monitor.deliver"] < seq["push.start"] &&
		seq["push.start"] < seq["device.write"] &&
		seq["device.write"] <= seq["push.barrier"]) {
		t.Fatalf("incident timeline out of order: %v", seq)
	}
	if inc.Trace == nil || inc.Trace.TxnID != txn {
		t.Fatalf("incident trace missing: %+v", inc.Trace)
	}

	// /debug/incidents?txn= narrows to the same capture.
	if err := json.Unmarshal([]byte(get("/debug/incidents?txn="+strconv.FormatUint(txn, 10))), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Incidents) == 0 || dump.Incidents[0].Txn != txn {
		t.Fatalf("?txn=%d returned %+v", txn, dump.Incidents)
	}

	// The history sampler must have caught the slow push: at least one
	// nonzero core_push_seconds average.
	var hist struct {
		Series []struct {
			Name    string       `json:"name"`
			Samples []obs.Sample `json:"samples"`
		} `json:"series"`
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if err := json.Unmarshal([]byte(get("/debug/history?series="+obs.SeriesPushLatency)), &hist); err != nil {
			t.Fatalf("/debug/history is not JSON: %v", err)
		}
		nonzero := false
		for _, ser := range hist.Series {
			for _, sm := range ser.Samples {
				if sm.Value > 0 {
					nonzero = true
				}
			}
		}
		if nonzero {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/debug/history never showed a nonzero push-latency sample: %+v", hist)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFlightRecorderEventsAcrossPlanes checks that one transaction's
// /debug/events?txn= view stitches all planes' emissions together.
func TestFlightRecorderEventsAcrossPlanes(t *testing.T) {
	o, s := startObservedStack(t)
	txn := s.DB.LastTxnID()

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	var dump struct {
		Total  uint64      `json:"total"`
		Events []obs.Event `json:"events"`
	}
	// The device.write event lands after table convergence; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/debug/events?txn=" + strconv.FormatUint(txn, 10))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(body, &dump); err != nil {
			t.Fatalf("/debug/events is not JSON: %v\n%s", err, body)
		}
		kinds := map[string]bool{}
		for _, ev := range dump.Events {
			kinds[ev.Kind] = true
		}
		if kinds["txn.commit"] && kinds["monitor.deliver"] && kinds["apply.start"] &&
			kinds["apply.end"] && kinds["delta.done"] && kinds["device.write"] && kinds["push.barrier"] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/debug/events?txn=%d incomplete: %+v", txn, dump.Events)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, ev := range dump.Events {
		if ev.Txn != txn {
			t.Fatalf("filtered dump leaked txn %d: %+v", ev.Txn, ev)
		}
	}
}
